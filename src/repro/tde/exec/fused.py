"""Fused pipeline operator: filter + project + aggregate in one pass.

The TDE's operators each materialize a ``Table`` per batch; for the hot
dashboard path (scan → filter → project → aggregate) that means three
intermediate tables per batch that exist only to be torn apart again.
:class:`PFusedPipeline` collapses such a chain into one operator that

* computes the combined filter mask once (per batch or per scan
  fraction), with qualifying conjuncts evaluated in *code space* — once
  per dictionary entry or once per RLE run — instead of per row
  (paper 4.1's "queries are processed directly on the compressed data");
* gathers only surviving rows, keeping dictionary codes intact so the
  downstream group-by factorization takes the code fast path;
* projects and aggregates those rows without intermediate ``Table``
  construction between the steps.

Two modes:

* **table mode** (``table`` set): the operator absorbed a ``PScan`` and
  works on the storage table's physical vectors directly over
  ``[start, stop)`` — this is where RLE runs are filtered per-run.
* **stream mode** (``source`` set): the operator consumes batches from
  an arbitrary child (exchange, join, RLE index scan) and fuses the
  per-batch work above it.

Results are byte-identical to the unfused chain; the differential
kernel-equivalence suite pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ...datatypes import LogicalType
from ...expr.ast import ColumnRef, Expr, columns_used, conjuncts, infer_type
from ...expr.eval import evaluate, evaluate_predicate
from ..storage.column import Column
from ..storage.table import Table
from ..storage.vectors import PlainVector, RleVector
from .kernels import AggSpec, code_space_safe, predicate_mask
from .physical import ExecContext, PhysNode, aggregate_table


@dataclass
class PFusedPipeline(PhysNode):
    """A collapsed Filter/Project/HashAggregate chain (plus scan).

    Exactly one of ``table`` (absorbed scan) or ``source`` (stream child)
    is set. ``predicate`` filters input rows; ``items`` then computes the
    projection (in input-column terms); ``groupby``/``specs`` aggregate
    the projected rows. Any of the three stages may be absent.
    ``fused_ops`` records what was absorbed, for EXPLAIN labels.
    Execution state (the per-dictionary verdict cache) is per-call, so a
    plan-cache-shared instance is safe across threads.
    """

    table: Table | None = None
    columns: list[str] | None = None
    start: int = 0
    stop: int | None = None
    source: PhysNode | None = None
    predicate: Expr | None = None
    items: list[tuple[str, Expr]] | None = None
    groupby: list[str] | None = None
    specs: list[AggSpec] | None = None
    fused_ops: tuple[str, ...] = ()
    code_space: bool = True

    def children(self) -> tuple[PhysNode, ...]:
        return (self.source,) if self.source is not None else ()

    @property
    def is_aggregate(self) -> bool:
        return self.specs is not None

    # ------------------------------------------------------------------ #
    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        conjs = conjuncts(self.predicate)
        cache: dict = {}  # (conjunct idx, dictionary identity) -> verdicts
        if self.table is not None:
            yield from self._execute_table(ctx, conjs, cache)
        else:
            yield from self._execute_stream(ctx, conjs, cache)

    # ------------------------------------------------------------------ #
    # Table mode: operate on the storage vectors of one scan fraction
    # ------------------------------------------------------------------ #
    def _execute_table(self, ctx: ExecContext, conjs, cache) -> Iterator[Table]:
        table = self.table
        stop = table.n_rows if self.stop is None else self.stop
        start = self.start
        span = max(stop - start, 0)
        ctx.metrics.add(rows_scanned=span, batches=1)
        mask = self._range_mask(conjs, cache, start, stop)
        if mask is None:
            idx = np.arange(start, stop, dtype=np.int64)
        else:
            idx = np.flatnonzero(mask) + start
        out = self._finish(self._take_columns(idx), ctx)
        ctx.metrics.add(rows_emitted=out.n_rows)
        yield out

    def _take_columns(self, idx: np.ndarray) -> Table:
        """Gather surviving rows for exactly the columns still needed.

        ``Column.take`` keeps the dictionary, so group-by factorization
        downstream reuses the codes (the ``factorize_table`` fast path).
        """
        if self.items is not None:
            needed: list[str] = []
            for _, expr in self.items:
                for name in sorted(columns_used(expr)):
                    if name not in needed:
                        needed.append(name)
        elif self.specs is not None:
            needed = list(self.groupby or [])
            for spec in self.specs:
                if spec.arg is not None and spec.arg not in needed:
                    needed.append(spec.arg)
        elif self.columns is not None:
            needed = list(self.columns)
        else:
            needed = self.table.column_names
        if not needed and self.table.column_names:
            # Constant-only projection: keep one input column so the
            # gathered table still knows how many rows survived.
            needed = [self.table.column_names[0]]
        return Table({name: self.table.column(name).take(idx) for name in needed})

    def _range_mask(self, conjs, cache, start: int, stop: int) -> np.ndarray | None:
        """Combined mask over ``[start, stop)``; None when unfiltered."""
        if not conjs:
            return None
        mask: np.ndarray | None = None
        fallback: list[Expr] = []
        for i, conj in enumerate(conjs):
            m = self._range_conj_mask(conj, i, cache, start, stop) if self.code_space else None
            if m is None:
                fallback.append(conj)
                continue
            mask = m if mask is None else mask & m
        if fallback:
            # Row-space conjuncts see the same decoded slice the unfused
            # PScan would have built, one slice for the whole fraction.
            batch = self.table.slice(start, stop)
            for conj in fallback:
                m = evaluate_predicate(conj, batch)
                mask = m if mask is None else mask & m
        return mask

    def _range_conj_mask(self, conj, i: int, cache, start: int, stop: int) -> np.ndarray | None:
        """Code-space / run-space mask for one conjunct, or None."""
        cols = columns_used(conj)
        if len(cols) != 1 or not code_space_safe(conj):
            return None
        name = next(iter(cols))
        if not self.table.has_column(name):
            return None
        col = self.table.column(name)
        vec = col.physical
        if col.dictionary is not None:
            key = (i, id(col.dictionary))
            verdict = cache.get(key)
            if verdict is None:
                verdict = col.dictionary.predicate_codes(conj, name, col.ltype, col.collation)
                cache[key] = verdict
            if isinstance(vec, RleVector):
                mask = vec.expand_runs(verdict[vec.values], start, stop)
            else:
                mask = verdict[vec.slice(start, stop)]
        elif isinstance(vec, RleVector):
            # Plain RLE column: evaluate once per run, expand to rows.
            run_col = Column(col.ltype, PlainVector(vec.values), collation=col.collation)
            per_run = evaluate_predicate(conj, Table({name: run_col}))
            mask = vec.expand_runs(per_run, start, stop)
        else:
            return None
        if col.null_mask is not None:
            mask = mask & ~col.null_mask[start:stop]
        return mask

    # ------------------------------------------------------------------ #
    # Stream mode: fuse the per-batch work above an arbitrary child
    # ------------------------------------------------------------------ #
    def _execute_stream(self, ctx: ExecContext, conjs, cache) -> Iterator[Table]:
        types: dict[str, LogicalType] | None = None
        parts: list[Table] = []
        emitted = False
        for batch in self.source.execute(ctx):
            if conjs:
                mask = predicate_mask(batch, conjs, cache=cache, code_space=self.code_space)
                out = batch.filter(mask)
            else:
                out = batch
            if self.items is not None:
                if types is None:
                    schema = batch.schema()
                    types = {name: infer_type(expr, schema) for name, expr in self.items}
                out = _apply_items(out, self.items, types)
            if self.is_aggregate:
                parts.append(out)
                continue
            if out.n_rows or not emitted:
                emitted = True
                ctx.metrics.add(rows_emitted=out.n_rows)
                yield out
        if self.is_aggregate:
            source = Table.concat(parts)
            yield aggregate_table(source, list(self.groupby or []), list(self.specs))

    def _finish(self, selected: Table, ctx: ExecContext) -> Table:
        """Apply projection and aggregation to the surviving rows."""
        if self.items is not None:
            schema = selected.schema()
            types = {name: infer_type(expr, schema) for name, expr in self.items}
            selected = _apply_items(selected, self.items, types)
        if self.is_aggregate:
            return aggregate_table(selected, list(self.groupby or []), list(self.specs))
        return selected


def _apply_items(batch: Table, items, types) -> Table:
    """PProject semantics: ColumnRef passthrough, else evaluate."""
    cols: dict[str, Column] = {}
    for name, expr in items:
        if isinstance(expr, ColumnRef):
            cols[name] = batch.column(expr.name)
            continue
        values, mask = evaluate(expr, batch)
        cols[name] = Column(types[name], PlainVector(np.asarray(values)), null_mask=mask)
    return Table(cols)
