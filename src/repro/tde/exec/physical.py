"""Physical operators of the TDE execution engine.

Each operator's ``execute(ctx)`` yields batches (``Table`` objects). The
contract: every stream yields at least one batch (possibly empty) so that
consumers always learn the schema; NULL semantics follow SQL; operators
never mutate input batches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ... import obs

from ...datatypes import LogicalType
from ...errors import ExecutionError
from ...expr.ast import ColumnRef, Expr, infer_type
from ...expr.eval import evaluate, evaluate_predicate
from ..storage.column import Column
from ..storage.table import Table
from ..storage.vectors import PlainVector, RleVector
from .kernels import (
    AggSpec,
    aggregate_groups,
    build_index,
    factorize_table,
    fill_array,
    probe_index,
)


class Metrics:
    """Thread-safe execution counters (batch granularity)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rows_scanned = 0
        self.rows_emitted = 0
        self.batches = 0
        self.runs_skipped = 0

    def add(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                setattr(self, key, getattr(self, key) + delta)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "rows_scanned": self.rows_scanned,
                "rows_emitted": self.rows_emitted,
                "batches": self.batches,
                "runs_skipped": self.runs_skipped,
            }


class OpRecorder:
    """Per-operator inclusive timings and row counts (tracing only).

    Timings are *inclusive*: time spent pulling a batch from an operator
    includes its children, mirroring how profilers report Volcano trees.
    Attached to an :class:`ExecContext` only while observability is
    enabled, so the default path pays nothing.

    With ``per_node=True`` (EXPLAIN ANALYZE) the recorder additionally
    keeps one accumulator per operator *instance*, keyed by object
    identity; :meth:`node_stats` hands the map to the explain renderer,
    which translates identities into stable plan positions.
    """

    def __init__(self, clock=time.perf_counter, *, per_node: bool = False):
        self.clock = clock
        self.per_node = per_node
        self._lock = threading.Lock()
        self._ops: dict[str, list[float]] = {}  # name -> [rows, seconds, batches]
        self._nodes: dict[int, list[float]] = {}  # id(node) -> same shape

    def iterate(
        self, name: str, batches: Iterator[Table], node: "PhysNode | None" = None
    ) -> Iterator[Table]:
        clock = self.clock
        key = id(node) if (self.per_node and node is not None) else None
        while True:
            started = clock()
            try:
                batch = next(batches)
            except StopIteration:
                self._add(name, 0, clock() - started, 0, key)
                return
            self._add(name, batch.n_rows, clock() - started, 1, key)
            yield batch

    def record_node(
        self, node: "PhysNode", name: str, rows: int, seconds: float, batches: int = 1
    ) -> None:
        """Record one already-measured execution (non-iterator operators)."""
        key = id(node) if self.per_node else None
        self._add(name, rows, seconds, batches, key)

    def _add(
        self, name: str, rows: int, seconds: float, batches: int, key: int | None = None
    ) -> None:
        with self._lock:
            acc = self._ops.setdefault(name, [0, 0.0, 0])
            acc[0] += rows
            acc[1] += seconds
            acc[2] += batches
            if key is not None:
                acc = self._nodes.setdefault(key, [0, 0.0, 0])
                acc[0] += rows
                acc[1] += seconds
                acc[2] += batches

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {
                name: {"rows": acc[0], "seconds": acc[1], "batches": acc[2]}
                for name, acc in sorted(self._ops.items())
            }

    def node_stats(self) -> dict[int, dict[str, float]]:
        """Per-instance stats keyed by ``id(node)`` (``per_node`` only)."""
        with self._lock:
            return {
                key: {"rows": acc[0], "seconds": acc[1], "batches": acc[2]}
                for key, acc in self._nodes.items()
            }


@dataclass
class ExecContext:
    """Per-query execution context."""

    batch_size: int = 8192
    parallel: bool = True
    metrics: Metrics = field(default_factory=Metrics)
    #: Set by execute_to_table when observability is on; None otherwise.
    recorder: OpRecorder | None = None


class PhysNode:
    """Base class for physical operators."""

    def children(self) -> tuple["PhysNode", ...]:
        return ()

    def execute(self, ctx: ExecContext) -> Iterator[Table]:
        """Yield batches, routed through the context's recorder if any."""
        if ctx.recorder is None:
            return self._execute(ctx)
        return ctx.recorder.iterate(type(self).__name__, self._execute(ctx), node=self)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:  # pragma: no cover
        raise NotImplementedError

    def walk(self) -> Iterator["PhysNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


def execute_to_table(node: PhysNode, ctx: ExecContext | None = None) -> Table:
    """Run a physical plan to completion and concatenate its batches."""
    ctx = ctx or ExecContext()
    if ctx.recorder is None and obs.enabled():
        # Time operators on the tracer's clock so virtual-time recordings
        # stay deterministic (real per-op seconds would leak wall time
        # into otherwise seeded span attributes).
        ctx.recorder = OpRecorder(clock=getattr(obs.get_tracer(), "clock", None) or time.perf_counter)
        with obs.span("tde.execute", root=type(node).__name__) as sp:
            batches = list(node.execute(ctx))
            operators = ctx.recorder.snapshot()
            sp.set(operators=operators)
            for name, acc in operators.items():
                obs.counter(f"tde.op.{name}.rows").inc(acc["rows"])
                obs.histogram(f"tde.op.{name}.s").observe(acc["seconds"])
    else:
        batches = list(node.execute(ctx))
    if not batches:
        raise ExecutionError("operator produced no batches (broken contract)")
    return Table.concat(batches) if len(batches) > 1 else batches[0]


# ---------------------------------------------------------------------- #
# Scans
# ---------------------------------------------------------------------- #
@dataclass
class PScan(PhysNode):
    """Scan a storage table, optionally a row range of it (FractionTable).

    ``start``/``stop`` delimit the fraction this scan reads — the
    partitioning mechanism behind parallel table scans (paper 4.2.1).
    ``predicate`` is a pushed-down scan filter; ``columns`` prunes output.
    """

    table: Table
    columns: list[str] | None = None
    predicate: Expr | None = None
    start: int = 0
    stop: int | None = None

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        stop = self.table.n_rows if self.stop is None else self.stop
        start = self.start
        emitted = False
        needed = self._needed_columns()
        while start < stop:
            end = min(start + ctx.batch_size, stop)
            batch = self.table.slice(start, end)
            ctx.metrics.add(rows_scanned=end - start, batches=1)
            if self.predicate is not None:
                keep = evaluate_predicate(self.predicate, batch)
                batch = batch.filter(keep)
            if needed is not None:
                batch = batch.project(needed)
            if batch.n_rows or not emitted:
                emitted = True
                ctx.metrics.add(rows_emitted=batch.n_rows)
                yield batch
            start = end
        if not emitted:
            empty = self.table.slice(0, 0)
            if needed is not None:
                empty = empty.project(needed)
            yield empty

    def _needed_columns(self) -> list[str] | None:
        return list(self.columns) if self.columns is not None else None


@dataclass
class PIndexedRleScan(PhysNode):
    """Range-skipping scan over an RLE-encoded column (paper 4.3).

    The RLE runs of ``column`` form an IndexTable (value, count, start);
    ``predicate`` (which references only ``column``) filters the runs, and
    only the surviving row ranges of the main table are read. ``residual``
    is applied to the scanned rows afterwards.
    """

    table: Table
    column: str
    predicate: Expr
    residual: Expr | None = None
    columns: list[str] | None = None

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        col = self.table.column(self.column)
        vec = col.physical
        if not isinstance(vec, RleVector):
            # Planner should not have chosen this operator; degrade safely.
            fallback_pred = self.predicate
            if self.residual is not None:
                from ...expr.ast import Call

                fallback_pred = Call("and", (self.predicate, self.residual))
            yield from PScan(self.table, self.columns, fallback_pred).execute(ctx)
            return
        values, counts, starts = vec.index_table()
        decoded = col.dictionary.decode(values) if col.dictionary is not None else values
        index_tbl = Table(
            {self.column: Column(col.ltype, PlainVector(decoded), collation=col.collation)}
        )
        keep = evaluate_predicate(self.predicate, index_tbl)
        selected = np.flatnonzero(keep)
        ctx.metrics.add(runs_skipped=int(len(values) - len(selected)))
        emitted = False
        needed = list(self.columns) if self.columns is not None else None
        for run_idx in selected:
            run_start = int(starts[run_idx])
            run_stop = run_start + int(counts[run_idx])
            pos = run_start
            while pos < run_stop:
                end = min(pos + ctx.batch_size, run_stop)
                batch = self.table.slice(pos, end)
                ctx.metrics.add(rows_scanned=end - pos, batches=1)
                if self.residual is not None:
                    batch = batch.filter(evaluate_predicate(self.residual, batch))
                if needed is not None:
                    batch = batch.project(needed)
                if batch.n_rows or not emitted:
                    emitted = True
                    ctx.metrics.add(rows_emitted=batch.n_rows)
                    yield batch
                pos = end
        if not emitted:
            empty = self.table.slice(0, 0)
            if needed is not None:
                empty = empty.project(needed)
            yield empty


@dataclass
class PSingleRow(PhysNode):
    """Emit one pre-built table (used for constant inputs and tests)."""

    table: Table

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        yield self.table


# ---------------------------------------------------------------------- #
# Streaming operators
# ---------------------------------------------------------------------- #
@dataclass
class PFilter(PhysNode):
    child: PhysNode
    predicate: Expr

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        for batch in self.child.execute(ctx):
            yield batch.filter(evaluate_predicate(self.predicate, batch))


@dataclass
class PProject(PhysNode):
    child: PhysNode
    items: list[tuple[str, Expr]]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        types: dict[str, LogicalType] | None = None
        for batch in self.child.execute(ctx):
            if types is None:
                schema = batch.schema()
                types = {name: infer_type(expr, schema) for name, expr in self.items}
            cols: dict[str, Column] = {}
            for name, expr in self.items:
                if isinstance(expr, ColumnRef):
                    source = batch.column(expr.name)
                    cols[name] = source
                    continue
                values, mask = evaluate(expr, batch)
                cols[name] = Column(
                    types[name],
                    PlainVector(np.asarray(values)),
                    null_mask=mask,
                )
            yield Table(cols)


@dataclass
class PLimit(PhysNode):
    child: PhysNode
    n: int

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        remaining = self.n
        emitted = False
        for batch in self.child.execute(ctx):
            if remaining <= 0:
                if not emitted:
                    yield batch.slice(0, 0)
                    emitted = True
                break
            out = batch if batch.n_rows <= remaining else batch.slice(0, remaining)
            remaining -= out.n_rows
            emitted = True
            yield out
        if not emitted:
            raise ExecutionError("limit received no batches")


# ---------------------------------------------------------------------- #
# Hash join
# ---------------------------------------------------------------------- #
@dataclass
class PHashJoin(PhysNode):
    """Hash join: builds on the right input, probes with the left.

    "The TDE's execution engine processes the join by building a hash
    table for the right-side input, and probing the left-side input for
    matches." (paper 4.2.2). ``build_source`` may be a ``SharedBuild`` so
    parallel fragments share a single hash table.
    """

    kind: str
    conditions: list[tuple[str, str]]
    probe: PhysNode
    build_source: "PhysNode"

    def children(self) -> tuple[PhysNode, ...]:
        return (self.probe, self.build_source)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        from .exchange import SharedBuild

        if isinstance(self.build_source, SharedBuild):
            build_table = self.build_source.get(ctx)
        else:
            build_table = execute_to_table(self.build_source, ctx)
        left_keys = [l for l, _ in self.conditions]
        right_keys = [r for _, r in self.conditions]
        index = build_index(build_table, right_keys)
        right_out = [c for c in build_table.column_names if c not in set(right_keys)]
        for batch in self.probe.execute(ctx):
            yield self._join_batch(batch, build_table, index, left_keys, right_out)

    def _join_batch(self, batch: Table, build_table: Table, index, left_keys, right_out) -> Table:
        probe_rows, build_rows, matched = probe_index(index, batch, left_keys)
        if self.kind == "left":
            unmatched = np.flatnonzero(~matched)
        else:
            unmatched = np.zeros(0, dtype=np.int64)
        cols: dict[str, Column] = {}
        all_probe = np.concatenate((probe_rows, unmatched)) if len(unmatched) else probe_rows
        left_part = batch.take(all_probe)
        for name in batch.column_names:
            cols[name] = left_part.column(name)
        n_matched = len(probe_rows)
        n_total = n_matched + len(unmatched)
        for name in right_out:
            col = build_table.column(name)
            taken = col.take(build_rows) if n_matched else col.slice(0, 0)
            if len(unmatched) == 0:
                cols[name] = taken
                continue
            values = np.concatenate(
                (taken.storage_values(), fill_array(col.ltype, len(unmatched)))
            )
            mask = np.zeros(n_total, dtype=np.bool_)
            if taken.null_mask is not None:
                mask[:n_matched] = taken.null_mask
            mask[n_matched:] = True
            cols[name] = Column(col.ltype, PlainVector(values), null_mask=mask, collation=col.collation)
        return Table(cols)


# ---------------------------------------------------------------------- #
# Aggregation
# ---------------------------------------------------------------------- #
@dataclass
class PHashAggregate(PhysNode):
    """Stop-and-go hash aggregation over factorized keys."""

    child: PhysNode
    groupby: list[str]
    specs: list[AggSpec]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        source = execute_to_table(self.child, ctx)
        yield aggregate_table(source, self.groupby, self.specs)


def aggregate_table(source: Table, groupby: list[str], specs: list[AggSpec]) -> Table:
    """Aggregate a fully materialized input (shared with stream agg)."""
    if source.n_rows == 0 and not groupby:
        return _empty_input_aggregate(source, specs)
    gids, n_groups, reps = factorize_table(source, list(groupby))
    cols: dict[str, Column] = {}
    key_part = source.take(reps)
    for key in groupby:
        cols[key] = key_part.column(key)
    cols.update(aggregate_groups(source, gids, n_groups, list(specs)))
    return Table(cols)


def _empty_input_aggregate(source: Table, specs: list[AggSpec]) -> Table:
    """SQL: a global aggregate over zero rows yields exactly one row."""
    cols: dict[str, Column] = {}
    for spec in specs:
        if spec.func in ("count", "count_star", "count_distinct"):
            cols[spec.name] = Column(LogicalType.INT, PlainVector(np.zeros(1, dtype=np.int64)))
        else:
            fill = fill_array(spec.result_type, 1)
            cols[spec.name] = Column(
                spec.result_type, PlainVector(fill), null_mask=np.ones(1, dtype=np.bool_)
            )
    return Table(cols)


@dataclass
class PStreamAggregate(PhysNode):
    """Streaming aggregation for inputs sorted (grouped) by the keys.

    Emits each group as soon as the next key value arrives — the streaming
    implementation the optimizer prefers when sorting properties allow
    (paper 4.2.4). Holds only the current group's rows.
    """

    child: PhysNode
    groupby: list[str]
    specs: list[AggSpec]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        carry: Table | None = None
        first: Table | None = None
        emitted = False
        for batch in self.child.execute(ctx):
            if first is None:
                # Even an all-empty stream carries the schema the empty
                # aggregate needs (a fully filtered scan still yields one
                # empty batch — the every-stream-yields-a-batch contract).
                first = batch
            if batch.n_rows == 0:
                continue
            merged = Table.concat([carry, batch]) if carry is not None and carry.n_rows else batch
            boundary = self._last_boundary(merged)
            if boundary == 0:
                carry = merged
                continue
            complete = merged.slice(0, boundary)
            carry = merged.slice(boundary, merged.n_rows)
            out = aggregate_table(complete, self.groupby, self.specs)
            emitted = True
            yield out
        if carry is not None and carry.n_rows:
            yield aggregate_table(carry, self.groupby, self.specs)
        elif not emitted:
            if carry is None:
                carry = first if first is not None else _empty_schema_guess()
            yield aggregate_table(carry, self.groupby, self.specs)

    def _last_boundary(self, table: Table) -> int:
        """Index of the first row of the last (still open) group."""
        change = np.zeros(table.n_rows, dtype=np.bool_)
        for key in self.groupby:
            col = table.column(key)
            values = col.storage_values()
            if values.dtype == object:
                values = values.astype("U")
            change[1:] |= values[1:] != values[:-1]
            if col.null_mask is not None:
                change[1:] |= col.null_mask[1:] != col.null_mask[:-1]
        boundaries = np.flatnonzero(change)
        return int(boundaries[-1]) if len(boundaries) else 0


def _empty_schema_guess() -> Table:
    raise ExecutionError("stream aggregate received no batches")


# ---------------------------------------------------------------------- #
# Ordering
# ---------------------------------------------------------------------- #
@dataclass
class PWindow(PhysNode):
    """Window/table calculations over partitions (paper §1's "window and
    statistical functions").

    Stop-and-go: materializes its input, orders it by the first item's
    (partition, order) addressing, and appends one column per item. Each
    item may use its own partition/order addressing; values are computed
    along that ordering and scattered back to the output row positions.
    """

    child: PhysNode
    items: list  # list[WindowItem]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        from ..tql.binder import _window_type

        source = execute_to_table(self.child, ctx)
        first = self.items[0]
        base_keys = [(p, True) for p in first.partition_by] + list(first.order_by)
        table = source.sort_by(base_keys) if base_keys else source
        schema = table.schema()
        for item in self.items:
            values = self._compute(item, table)
            ltype = _window_type(item, schema)
            column = Column.from_values(values, ltype, compress=False)
            table = table.with_column(item.alias, column)
            schema[item.alias] = ltype
        yield table

    def _compute(self, item, table: Table) -> list:
        n = table.n_rows
        if n == 0:
            return []
        keys = [(p, True) for p in item.partition_by] + list(item.order_by)
        if keys:
            tagged = table.with_column(
                "__rowid",
                Column(
                    LogicalType.INT,
                    PlainVector(np.arange(n, dtype=np.int64)),
                ),
            )
            ordered = tagged.sort_by(keys)
            positions = ordered.column("__rowid").storage_values()
        else:
            ordered = table
            positions = np.arange(n, dtype=np.int64)
        partition_cols = [ordered.column(p).python_values() for p in item.partition_by]
        order_cols = [ordered.column(k).python_values() for k, _a in item.order_by]
        if item.arg is not None:
            arg_values, arg_mask = evaluate(item.arg, ordered)
            args = [
                None if (arg_mask is not None and arg_mask[i]) else arg_values[i]
                for i in range(n)
            ]
        else:
            args = [None] * n
        out: list = [None] * n
        start = 0
        while start < n:
            stop = start
            while stop < n and all(
                col[stop] == col[start] for col in partition_cols
            ):
                stop += 1
            self._fill_partition(item, args, order_cols, positions, out, start, stop)
            start = stop
        return out

    @staticmethod
    def _fill_partition(item, args, order_cols, positions, out, start, stop) -> None:
        span = range(start, stop)
        if item.func == "row_number":
            for offset, i in enumerate(span):
                out[positions[i]] = offset + 1
        elif item.func == "rank":
            rank = 0
            for offset, i in enumerate(span):
                if offset == 0 or any(
                    col[i] != col[i - 1] for col in order_cols
                ):
                    rank = offset + 1
                out[positions[i]] = rank
        elif item.func in ("running_sum", "running_avg"):
            total = 0.0
            count = 0
            for i in span:
                if args[i] is not None:
                    total += args[i]
                    count += 1
                if item.func == "running_sum":
                    out[positions[i]] = total if count else None
                else:
                    out[positions[i]] = (total / count) if count else None
        elif item.func in ("window_sum", "window_max", "window_min", "share"):
            present = [args[i] for i in span if args[i] is not None]
            if item.func == "window_sum":
                value = sum(present) if present else None
                for i in span:
                    out[positions[i]] = value
            elif item.func == "window_max":
                value = max(present) if present else None
                for i in span:
                    out[positions[i]] = value
            elif item.func == "window_min":
                value = min(present) if present else None
                for i in span:
                    out[positions[i]] = value
            else:  # share: percent of partition total
                total = sum(present) if present else None
                for i in span:
                    if args[i] is None or not total:
                        out[positions[i]] = None
                    else:
                        out[positions[i]] = args[i] / total
        else:  # pragma: no cover - parser validates
            raise ExecutionError(f"unknown window function {item.func}")


@dataclass
class PSort(PhysNode):
    child: PhysNode
    keys: list[tuple[str, bool]]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        source = execute_to_table(self.child, ctx)
        yield source.sort_by(list(self.keys))


@dataclass
class PTopN(PhysNode):
    """Keep the first ``n`` rows under the ordering, with bounded memory."""

    child: PhysNode
    n: int
    keys: list[tuple[str, bool]]

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        buffer: Table | None = None
        for batch in self.child.execute(ctx):
            buffer = batch if buffer is None else Table.concat([buffer, batch])
            if buffer.n_rows > max(4 * self.n, 1024):
                buffer = buffer.sort_by(list(self.keys)).head(self.n)
        if buffer is None:
            raise ExecutionError("topn received no batches")
        yield buffer.sort_by(list(self.keys)).head(self.n)
