"""Tableau Data Engine (TDE) reproduction.

A read-only column store with:

* a storage layer supporting dictionary compression and lightweight
  encodings (RLE, delta) — ``repro.tde.storage``
* a TQL front end (parser, binder) — ``repro.tde.tql``
* a rule-based optimizer with property derivation, join culling and
  parallel plan generation — ``repro.tde.optimizer``
* a vectorized Volcano-style execution engine with Exchange-based
  parallelism — ``repro.tde.exec``

The top-level entry point is :class:`repro.tde.engine.DataEngine`, imported
lazily so that the storage layer can be used standalone.
"""

__all__ = ["DataEngine"]


def __getattr__(name: str):
    if name == "DataEngine":
        from .engine import DataEngine

        return DataEngine
    raise AttributeError(name)
