"""Dictionary compression for TDE columns.

"The TDE uses a dictionary-based compression. When data is compressed, the
fixed tokens are stored in the original column. Each compressed column also
owns an associated dictionary for the original fixed length (array
compression) or variable length (heap compression) values." (paper 4.1.1)

Dictionaries here are *sorted by the column's collation*, so that the
integer code order equals the value order. This lets the optimizer translate
range predicates on dictionary-compressed columns into code ranges, and lets
ORDER BY on such columns sort codes directly.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence

import numpy as np

from ...collation import BINARY, Collation
from ...errors import StorageError


class Dictionary:
    """An immutable, collation-sorted dictionary of distinct column values.

    Attributes:
        values: numpy array of distinct representative values, sorted by
            the collation's sort key (or natural order for non-strings).
        kind: ``"heap"`` for variable-width (string) values, ``"array"``
            for fixed-width values.
        collation: collation the dictionary was built under (strings only;
            ``BINARY`` otherwise).
    """

    def __init__(self, values: np.ndarray, kind: str, collation: Collation = BINARY):
        if kind not in ("heap", "array"):
            raise StorageError(f"unknown dictionary kind {kind!r}")
        self.values = values
        self.kind = kind
        self.collation = collation
        if kind == "heap":
            self._keys = [collation.key(v) for v in values]
        else:
            self._keys = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def encode(
        cls, values: Sequence[Any] | np.ndarray, *, is_string: bool, collation: Collation = BINARY
    ) -> tuple[np.ndarray, "Dictionary"]:
        """Build a dictionary over ``values`` and return (codes, dictionary).

        For strings under a non-binary collation, values that compare equal
        share one code; the representative is the first occurrence.
        """
        if is_string:
            rep_by_key: dict[str, str] = {}
            for v in values:
                k = collation.key(v)
                if k not in rep_by_key:
                    rep_by_key[k] = v
            sorted_keys = sorted(rep_by_key)
            code_by_key = {k: i for i, k in enumerate(sorted_keys)}
            dict_values = np.empty(len(sorted_keys), dtype=object)
            dict_values[:] = [rep_by_key[k] for k in sorted_keys]
            codes = np.fromiter(
                (code_by_key[collation.key(v)] for v in values), dtype=np.int32, count=len(values)
            )
            return codes, cls(dict_values, "heap", collation)
        arr = np.asarray(values)
        uniq, codes = np.unique(arr, return_inverse=True)
        return codes.astype(np.int32), cls(uniq, "array", BINARY)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.values)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map an int code array back to values (vectorized gather)."""
        return self.values[codes]

    def code_for(self, value: Any) -> int:
        """Exact-match lookup; returns -1 when absent (collation-aware)."""
        if self.kind == "heap":
            k = self.collation.key(value)
            i = bisect_left(self._keys, k)
            return i if i < len(self._keys) and self._keys[i] == k else -1
        i = int(np.searchsorted(self.values, value))
        return i if i < len(self.values) and self.values[i] == value else -1

    def code_range(self, op: str, value: Any) -> tuple[int, int]:
        """Translate a comparison predicate into a half-open code range.

        Returns ``(lo, hi)`` such that codes in ``range(lo, hi)`` satisfy
        ``column <op> value``. Only meaningful for <, <=, >, >= (equality
        uses :meth:`code_for`). Relies on the dictionary being sorted.
        """
        if self.kind == "heap":
            key = self.collation.key(value)
            left = bisect_left(self._keys, key)
            right = bisect_right(self._keys, key)
        else:
            left = int(np.searchsorted(self.values, value, side="left"))
            right = int(np.searchsorted(self.values, value, side="right"))
        if op == "<":
            return 0, left
        if op == "<=":
            return 0, right
        if op == ">":
            return right, len(self.values)
        if op == ">=":
            return left, len(self.values)
        raise StorageError(f"code_range does not support operator {op!r}")

    def predicate_codes(self, predicate, name: str, ltype, collation=None) -> np.ndarray:
        """Evaluate a single-column predicate once per dictionary entry.

        Returns a bool array of length ``len(self)`` whose ``i``-th slot
        says whether rows coded ``i`` satisfy the predicate. This is the
        code-space execution primitive (paper 4.1): the predicate runs
        over the (small) distinct-value domain, and callers reduce the
        per-row work to an integer gather ``verdict[codes]``. NULL rows
        carry an arbitrary code, so callers must still AND out the null
        mask.
        """
        from ...expr.eval import evaluate_predicate
        from .column import Column
        from .table import Table
        from .vectors import PlainVector

        entry_col = Column(
            ltype,
            PlainVector(self.values),
            collation=collation if collation is not None else self.collation,
        )
        return evaluate_predicate(predicate, Table({name: entry_col}))

    @property
    def nbytes(self) -> int:
        if self.kind == "heap":
            return int(sum(len(v) for v in self.values)) + 8 * len(self.values)
        return int(self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dictionary(kind={self.kind}, size={len(self)}, collation={self.collation.name})"
