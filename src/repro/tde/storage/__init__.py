"""TDE storage layer: vectors, dictionaries, columns, tables, namespaces.

Mirrors the paper's section 4.1.1: a three-layer namespace
(database → schema → table), column-level dictionary compression (array
compression for fixed-width values, heap compression for variable-width),
lightweight storage encodings (run-length and delta) that are invisible
outside this layer, column-level collated strings, and single-file packing
of a whole database.
"""

from .vectors import PlainVector, RleVector, DeltaVector, PhysicalVector, encode_best
from .dictionary import Dictionary
from .column import Column
from .table import Table
from .schema import Database, Schema, SYS_SCHEMA
from .filepack import pack_database, unpack_database

__all__ = [
    "PhysicalVector",
    "PlainVector",
    "RleVector",
    "DeltaVector",
    "encode_best",
    "Dictionary",
    "Column",
    "Table",
    "Database",
    "Schema",
    "SYS_SCHEMA",
    "pack_database",
    "unpack_database",
]
