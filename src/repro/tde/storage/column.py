"""Columns: logical type + physical vector + optional dictionary + nulls."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...collation import BINARY, Collation
from ...datatypes import LogicalType, from_storage, infer_type, storage_array
from ...errors import StorageError
from .dictionary import Dictionary
from .vectors import PhysicalVector, PlainVector, encode_best


class ColumnStats:
    """Lazily computed column statistics used by the optimizer.

    Attributes mirror what the paper's optimizer consults: cardinalities and
    domains (3.1), sortedness for streaming aggregates and range
    partitioning (4.2.3), and run structure for the RLE index scan (4.3).
    """

    def __init__(self, column: "Column"):
        self.null_count = int(column.null_mask.sum()) if column.null_mask is not None else 0
        storage = column.storage_values()
        valid = storage if column.null_mask is None else storage[~column.null_mask]
        self.row_count = len(column)
        if len(valid):
            if column.is_dictionary_encoded:
                self.n_distinct = len(column.dictionary)
                self.min_value = column.dictionary.values[0]
                self.max_value = column.dictionary.values[-1]
            else:
                uniq = np.unique(valid)
                self.n_distinct = len(uniq)
                self.min_value = uniq[0]
                self.max_value = uniq[-1]
            if len(valid) > 1:
                order_src = column.codes() if column.is_dictionary_encoded else storage
                order_valid = order_src if column.null_mask is None else order_src[~column.null_mask]
                self.is_sorted = bool(np.all(order_valid[1:] >= order_valid[:-1]))
            else:
                self.is_sorted = True
        else:
            self.n_distinct = 0
            self.min_value = None
            self.max_value = None
            self.is_sorted = True
        if len(storage):
            changes = 1 + int(np.count_nonzero(storage[1:] != storage[:-1])) if len(storage) > 1 else 1
            self.avg_run_length = len(storage) / changes
        else:
            self.avg_run_length = 0.0


class Column:
    """A typed, optionally dictionary-compressed and encoded column.

    The physical vector holds either raw storage values (plain columns) or
    int32 dictionary codes (compressed columns). ``null_mask`` marks NULL
    rows with ``True``; the underlying slot contains an unobservable fill.
    String columns carry a :class:`~repro.collation.Collation`.
    """

    def __init__(
        self,
        ltype: LogicalType,
        physical: PhysicalVector,
        *,
        dictionary: Dictionary | None = None,
        null_mask: np.ndarray | None = None,
        collation: Collation = BINARY,
    ):
        self.ltype = ltype
        self.physical = physical
        self.dictionary = dictionary
        self.null_mask = null_mask
        self.collation = collation if ltype is LogicalType.STR else BINARY
        if null_mask is not None and len(null_mask) != len(physical):
            raise StorageError("null mask length mismatch")
        self._stats: ColumnStats | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(
        cls,
        values: Sequence[Any],
        ltype: LogicalType | None = None,
        *,
        collation: Collation = BINARY,
        compress: bool | None = None,
        encoding: str | None = None,
    ) -> "Column":
        """Build a column from Python values (``None`` marks NULL).

        ``ltype`` is inferred from the first non-null value when omitted.
        ``compress`` controls dictionary compression (defaults to True for
        strings, and for other types when it saves space). ``encoding``
        forces the physical encoding of the stored vector.
        """
        if ltype is None:
            first = next((v for v in values if v is not None), None)
            if first is None:
                raise StorageError("cannot infer type of an all-NULL column")
            ltype = infer_type(first)
        arr, mask = storage_array(list(values), ltype)
        return cls.from_numpy(arr, ltype, null_mask=mask, collation=collation, compress=compress, encoding=encoding)

    @classmethod
    def from_numpy(
        cls,
        arr: np.ndarray,
        ltype: LogicalType,
        *,
        null_mask: np.ndarray | None = None,
        collation: Collation = BINARY,
        compress: bool | None = None,
        encoding: str | None = None,
    ) -> "Column":
        """Build a column from a storage-representation numpy array."""
        if compress is None:
            compress = ltype is LogicalType.STR
        if compress:
            codes, dictionary = Dictionary.encode(
                arr, is_string=ltype is LogicalType.STR, collation=collation
            )
            physical = encode_best(codes, prefer=encoding)
            return cls(ltype, physical, dictionary=dictionary, null_mask=null_mask, collation=collation)
        if ltype is LogicalType.STR:
            # Uncompressed strings stay plain; encodings need fixed width.
            return cls(ltype, PlainVector(arr), null_mask=null_mask, collation=collation)
        return cls(ltype, encode_best(arr, prefer=encoding), null_mask=null_mask, collation=collation)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.physical)

    @property
    def is_dictionary_encoded(self) -> bool:
        return self.dictionary is not None

    @property
    def encoding(self) -> str:
        return self.physical.encoding

    def codes(self) -> np.ndarray | None:
        """Materialized dictionary codes, or None for plain columns."""
        if self.dictionary is None:
            return None
        return self.physical.materialize()

    def storage_values(self) -> np.ndarray:
        """Decoded storage-representation values (dictionary applied)."""
        raw = self.physical.materialize()
        if self.dictionary is not None:
            return self.dictionary.decode(raw)
        return raw

    def python_values(self) -> list[Any]:
        """Friendly Python values with ``None`` for NULLs (slow; for tests/IO)."""
        storage = self.storage_values()
        out = [from_storage(v, self.ltype) for v in storage]
        if self.null_mask is not None:
            for i in np.flatnonzero(self.null_mask):
                out[i] = None
        return out

    def value_at(self, row: int) -> Any:
        if self.null_mask is not None and self.null_mask[row]:
            return None
        raw = self.physical.take(np.asarray([row]))[0]
        if self.dictionary is not None:
            raw = self.dictionary.values[raw]
        return from_storage(raw, self.ltype)

    # ------------------------------------------------------------------ #
    # Row selection (results are plain-encoded but keep the dictionary)
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Column":
        taken = self.physical.take(indices)
        mask = self.null_mask[indices] if self.null_mask is not None else None
        if mask is not None and not mask.any():
            mask = None
        return Column(
            self.ltype,
            PlainVector(taken),
            dictionary=self.dictionary,
            null_mask=mask,
            collation=self.collation,
        )

    def filter(self, keep: np.ndarray) -> "Column":
        return self.take(np.flatnonzero(keep))

    def slice(self, start: int, stop: int) -> "Column":
        part = self.physical.slice(start, stop)
        mask = self.null_mask[start:stop] if self.null_mask is not None else None
        if mask is not None and not mask.any():
            mask = None
        return Column(
            self.ltype,
            PlainVector(part),
            dictionary=self.dictionary,
            null_mask=mask,
            collation=self.collation,
        )

    # ------------------------------------------------------------------ #
    # Stats & comparison
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ColumnStats:
        if self._stats is None:
            self._stats = ColumnStats(self)
        return self._stats

    @property
    def nbytes(self) -> int:
        total = self.physical.nbytes
        if self.dictionary is not None:
            total += self.dictionary.nbytes
        if self.null_mask is not None:
            total += self.null_mask.nbytes
        return total

    def equals(self, other: "Column") -> bool:
        """Logical equality: same type, same values (NULL == NULL)."""
        if self.ltype != other.ltype or len(self) != len(other):
            return False
        return self.python_values() == other.python_values()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dict_part = f", dict={len(self.dictionary)}" if self.dictionary is not None else ""
        return f"Column({self.ltype.name}, n={len(self)}, enc={self.encoding}{dict_part})"
