"""Tables: ordered collections of equal-length named columns."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ...collation import BINARY, Collation
from ...datatypes import LogicalType
from ...errors import StorageError
from .column import Column
from .vectors import PlainVector


class Table:
    """An immutable table of named columns.

    ``sort_keys`` is declared metadata: the ordered list of column names the
    rows are sorted by. The optimizer trusts it for streaming aggregation
    and range partitioning decisions (paper 4.2.3), so constructors that
    cannot guarantee it must not set it.
    """

    def __init__(
        self,
        columns: Mapping[str, Column],
        *,
        sort_keys: Sequence[str] = (),
        name: str | None = None,
    ):
        self.columns: dict[str, Column] = dict(columns)
        self.name = name
        lengths = {len(c) for c in self.columns.values()}
        if len(lengths) > 1:
            raise StorageError(f"ragged table: column lengths {sorted(lengths)}")
        self.n_rows = lengths.pop() if lengths else 0
        bad = [k for k in sort_keys if k not in self.columns]
        if bad:
            raise StorageError(f"sort keys not in table: {bad}")
        self.sort_keys: tuple[str, ...] = tuple(sort_keys)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pydict(
        cls,
        data: Mapping[str, Sequence[Any]],
        *,
        types: Mapping[str, LogicalType] | None = None,
        collations: Mapping[str, Collation] | None = None,
        encodings: Mapping[str, str] | None = None,
        compress: bool | None = None,
        sort_keys: Sequence[str] = (),
        name: str | None = None,
    ) -> "Table":
        """Build a table from ``{column_name: python_values}``."""
        types = types or {}
        collations = collations or {}
        encodings = encodings or {}
        cols = {
            key: Column.from_values(
                values,
                types.get(key),
                collation=collations.get(key, BINARY),
                compress=compress,
                encoding=encodings.get(key),
            )
            for key, values in data.items()
        }
        return cls(cols, sort_keys=sort_keys, name=name)

    @staticmethod
    def empty_like(table: "Table") -> "Table":
        return table.slice(0, 0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(f"no column {name!r}; have {self.column_names}") from None

    def has_column(self, name: str) -> bool:
        return name in self.columns

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns.values())

    def schema(self) -> dict[str, LogicalType]:
        return {k: c.ltype for k, c in self.columns.items()}

    # ------------------------------------------------------------------ #
    # Shaping
    # ------------------------------------------------------------------ #
    def project(self, names: Sequence[str]) -> "Table":
        cols = {n: self.column(n) for n in names}
        kept_sort = []
        for key in self.sort_keys:
            if key in cols:
                kept_sort.append(key)
            else:
                break  # a sort prefix only survives while contiguous
        return Table(cols, sort_keys=kept_sort, name=self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        cols = {mapping.get(k, k): c for k, c in self.columns.items()}
        if len(cols) != len(self.columns):
            raise StorageError("rename would collide column names")
        sort = tuple(mapping.get(k, k) for k in self.sort_keys)
        return Table(cols, sort_keys=sort, name=self.name)

    def with_column(self, name: str, column: Column) -> "Table":
        if len(column) != self.n_rows and self.columns:
            raise StorageError("with_column length mismatch")
        cols = dict(self.columns)
        cols[name] = column
        return Table(cols, sort_keys=self.sort_keys, name=self.name)

    def drop(self, names: Sequence[str]) -> "Table":
        keep = [n for n in self.column_names if n not in set(names)]
        return self.project(keep)

    # ------------------------------------------------------------------ #
    # Row selection
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Table":
        return Table({k: c.take(indices) for k, c in self.columns.items()}, name=self.name)

    def filter(self, keep: np.ndarray) -> "Table":
        return self.take(np.flatnonzero(keep))

    def slice(self, start: int, stop: int) -> "Table":
        return Table(
            {k: c.slice(start, stop) for k, c in self.columns.items()},
            sort_keys=self.sort_keys,
            name=self.name,
        )

    def head(self, n: int) -> "Table":
        return self.slice(0, min(n, self.n_rows))

    # ------------------------------------------------------------------ #
    # Sorting
    # ------------------------------------------------------------------ #
    def _sort_array(self, name: str) -> tuple[np.ndarray, bool]:
        """Return (array, numeric) where array orders rows by the column.

        Dictionary codes are collation-order by construction, so they sort
        correctly and cheaply. NULLs sort first via a -inf sentinel trick
        handled by the caller (we return the null mask separately there).
        """
        col = self.column(name)
        if col.is_dictionary_encoded:
            return col.physical.materialize().astype(np.int64), True
        storage = col.storage_values()
        if storage.dtype == object:
            keyed = col.collation.sort_keys(storage)
            return keyed, False
        if storage.dtype == np.bool_:
            storage = storage.astype(np.int8)
        return storage, True

    def sort_by(self, keys: Sequence[tuple[str, bool]]) -> "Table":
        """Stable sort by ``[(column, ascending), ...]``; NULLs sort first."""
        if self.n_rows <= 1 or not keys:
            return Table(dict(self.columns), sort_keys=tuple(k for k, _ in keys), name=self.name)
        arrays: list[tuple[np.ndarray, np.ndarray, bool, bool]] = []
        for name, asc in keys:
            arr, numeric = self._sort_array(name)
            mask = self.column(name).null_mask
            nulls = mask if mask is not None else np.zeros(self.n_rows, dtype=np.bool_)
            arrays.append((arr, nulls, asc, numeric))
        if all(numeric for _, _, _, numeric in arrays):
            lex_keys = []
            for arr, nulls, asc, _ in reversed(arrays):
                a = arr if asc else -arr
                # NULLs sort first regardless of direction (0 before 1).
                nk = np.where(nulls, 0, 1)
                lex_keys.append(a)
                lex_keys.append(nk)
            order = np.lexsort(lex_keys)
        else:
            def row_key(i: int):
                parts = []
                for arr, nulls, asc, numeric in arrays:
                    if nulls[i]:
                        parts.append((0, 0))
                    else:
                        v = arr[i]
                        if not asc and numeric:
                            v = -v
                        parts.append((1, v) if asc or numeric else (1, _Reversed(v)))
                return tuple(parts)

            order = np.asarray(sorted(range(self.n_rows), key=row_key), dtype=np.int64)
        out = self.take(order)
        out.sort_keys = tuple(k for k, asc in keys if asc)
        return out

    # ------------------------------------------------------------------ #
    # Combination / comparison / export
    # ------------------------------------------------------------------ #
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables with identical schemas."""
        tables = [t for t in tables if t is not None]
        if not tables:
            raise StorageError("concat of zero tables")
        first = tables[0]
        if len(tables) == 1:
            return first
        names = first.column_names
        for t in tables[1:]:
            if t.column_names != names or t.schema() != first.schema():
                raise StorageError("concat schema mismatch")
        cols: dict[str, Column] = {}
        for n in names:
            parts = [t.column(n) for t in tables]
            values = np.concatenate([p.storage_values() for p in parts])
            masks = [
                p.null_mask if p.null_mask is not None else np.zeros(len(p), dtype=np.bool_)
                for p in parts
            ]
            mask = np.concatenate(masks)
            col = parts[0]
            if col.ltype.name == "STR":
                cols[n] = Column.from_numpy(
                    values, col.ltype, null_mask=mask if mask.any() else None, collation=col.collation
                )
            else:
                cols[n] = Column(
                    col.ltype, PlainVector(values), null_mask=mask if mask.any() else None
                )
        return Table(cols, name=first.name)

    def to_pydict(self) -> dict[str, list[Any]]:
        return {k: c.python_values() for k, c in self.columns.items()}

    def to_rows(self) -> list[tuple[Any, ...]]:
        cols = [c.python_values() for c in self.columns.values()]
        return list(zip(*cols)) if cols else []

    def equals(self, other: "Table") -> bool:
        """Order-sensitive logical equality (column names, types, values)."""
        return (
            self.column_names == other.column_names
            and self.schema() == other.schema()
            and self.to_rows() == other.to_rows()
        )

    def approx_equals(
        self,
        other: "Table",
        *,
        rel: float = 1e-9,
        abs_tol: float = 1e-9,
        ordered: bool = True,
    ) -> bool:
        """Logical equality with float tolerance (parallel plans reorder
        floating-point summation, paper 4.2.3's local/global aggregation)."""
        if self.column_names != other.column_names or self.schema() != other.schema():
            return False
        if self.n_rows != other.n_rows:
            return False
        rows_a = self.to_rows()
        rows_b = other.to_rows()
        if not ordered:
            def key(row: tuple) -> tuple:
                return tuple(
                    (v is None, "" if v is None else str(v), str(type(v))) for v in row
                )

            rows_a = sorted(rows_a, key=key)
            rows_b = sorted(rows_b, key=key)
        for ra, rb in zip(rows_a, rows_b):
            for va, vb in zip(ra, rb):
                if va is None or vb is None:
                    if va is not vb:
                        return False
                elif isinstance(va, float) or isinstance(vb, float):
                    if abs(va - vb) > abs_tol + rel * max(abs(va), abs(vb)):
                        return False
                elif va != vb:
                    return False
        return True

    def equals_unordered(self, other: "Table") -> bool:
        """Order-insensitive equality (bag semantics over rows)."""
        if self.column_names != other.column_names or self.schema() != other.schema():
            return False

        def key(row: tuple) -> tuple:
            return tuple((v is None, "" if v is None else str(v), str(type(v))) for v in row)

        return sorted(self.to_rows(), key=key) == sorted(other.to_rows(), key=key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name or ''} {self.n_rows}x{len(self.columns)} {self.column_names})"


class _Reversed:
    """Wrapper inverting comparisons, for descending sorts of strings."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
