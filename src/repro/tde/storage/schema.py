"""Three-layer namespace: database → schema → table (paper 4.1.1).

Metadata lives in the reserved ``SYS`` schema, materialized on demand as
ordinary tables (``SYS.schemas``, ``SYS.tables``, ``SYS.columns``) so that
metadata queries go through the normal query path.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import StorageError
from .table import Table

SYS_SCHEMA = "SYS"
DEFAULT_SCHEMA = "Extract"


class Schema:
    """A named collection of tables."""

    def __init__(self, name: str):
        if name == SYS_SCHEMA:
            raise StorageError(f"{SYS_SCHEMA} is reserved")
        self.name = name
        self.tables: dict[str, Table] = {}

    def add_table(self, name: str, table: Table, *, replace: bool = False) -> None:
        if name in self.tables and not replace:
            raise StorageError(f"table {self.name}.{name} already exists")
        self.tables[name] = table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise StorageError(f"no table {self.name}.{name}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise StorageError(f"no table {self.name}.{name}")
        return self.tables[name]


class Database:
    """A named database: schemas plus the virtual SYS metadata schema."""

    def __init__(self, name: str):
        self.name = name
        self.schemas: dict[str, Schema] = {DEFAULT_SCHEMA: Schema(DEFAULT_SCHEMA)}
        #: Monotonic DDL counter. Any change to the namespace (create
        #: schema, add/replace/drop table) bumps it; the plan cache keys
        #: on it so cached plans die with the catalog state they bound to.
        self.version = 0

    # ------------------------------------------------------------------ #
    # Namespace management
    # ------------------------------------------------------------------ #
    def create_schema(self, name: str) -> Schema:
        if name in self.schemas:
            raise StorageError(f"schema {name} already exists")
        schema = Schema(name)
        self.schemas[name] = schema
        self.version += 1
        return schema

    def schema(self, name: str) -> Schema:
        if name not in self.schemas:
            raise StorageError(f"no schema {name}")
        return self.schemas[name]

    def add_table(self, qualified: str, table: Table, *, replace: bool = False) -> None:
        schema_name, table_name = self.split_name(qualified)
        if schema_name not in self.schemas:
            self.create_schema(schema_name)
        self.schemas[schema_name].add_table(table_name, table, replace=replace)
        self.version += 1

    def drop_table(self, qualified: str) -> None:
        schema_name, table_name = self.split_name(qualified)
        self.schema(schema_name).drop_table(table_name)
        self.version += 1

    def table(self, qualified: str) -> Table:
        schema_name, table_name = self.split_name(qualified)
        if schema_name == SYS_SCHEMA:
            return self._sys_table(table_name)
        return self.schema(schema_name).table(table_name)

    def has_table(self, qualified: str) -> bool:
        schema_name, table_name = self.split_name(qualified)
        if schema_name == SYS_SCHEMA:
            return table_name in ("schemas", "tables", "columns")
        return schema_name in self.schemas and table_name in self.schemas[schema_name].tables

    def iter_tables(self) -> Iterator[tuple[str, str, Table]]:
        for schema_name, schema in self.schemas.items():
            for table_name, table in schema.tables.items():
                yield schema_name, table_name, table

    @staticmethod
    def split_name(qualified: str) -> tuple[str, str]:
        """Split ``schema.table`` (an unqualified name gets the default)."""
        if "." in qualified:
            schema_name, table_name = qualified.split(".", 1)
            return schema_name, table_name
        return DEFAULT_SCHEMA, qualified

    # ------------------------------------------------------------------ #
    # SYS metadata
    # ------------------------------------------------------------------ #
    def _sys_table(self, name: str) -> Table:
        if name == "schemas":
            return Table.from_pydict({"schema_name": sorted(self.schemas)})
        if name == "tables":
            rows = [(s, t, tab.n_rows) for s, t, tab in self.iter_tables()]
            rows.sort()
            return Table.from_pydict(
                {
                    "schema_name": [r[0] for r in rows],
                    "table_name": [r[1] for r in rows],
                    "row_count": [r[2] for r in rows],
                }
            )
        if name == "columns":
            rows = []
            for s, t, tab in self.iter_tables():
                for col_name, col in tab.columns.items():
                    rows.append(
                        (s, t, col_name, col.ltype.value, col.encoding, col.collation.name)
                    )
            rows.sort()
            return Table.from_pydict(
                {
                    "schema_name": [r[0] for r in rows],
                    "table_name": [r[1] for r in rows],
                    "column_name": [r[2] for r in rows],
                    "type": [r[3] for r in rows],
                    "encoding": [r[4] for r in rows],
                    "collation": [r[5] for r in rows],
                }
            )
        raise StorageError(f"no SYS table {name}")
