"""Physical vectors: the on-disk/in-memory representations of column data.

The TDE distinguishes *dictionary compression* (visible outside the storage
layer) from *encodings* (run-length, delta) which are "a storage format that
is typically invisible outside this layer" (paper 4.1.1). This module
implements the encodings; ``dictionary.py`` implements compression.

A :class:`PhysicalVector` stores a sequence of fixed-width values (int64,
float64, bool) or — for plain vectors only — object-dtype strings. Columns
compose a vector with an optional dictionary and a null mask.

The run-length representation deliberately exposes its runs
(:meth:`RleVector.index_table`) because the optimizer turns them into an
IndexTable joined back to the main table for range skipping (paper 4.3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...errors import StorageError


class PhysicalVector:
    """Abstract base for physical vector encodings."""

    encoding: str = "abstract"

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def materialize(self) -> np.ndarray:
        """Decode to a plain numpy array of the storage dtype."""
        raise NotImplementedError  # pragma: no cover - abstract

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decode rows [start, stop) to a plain numpy array."""
        return self.materialize()[start:stop]

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Decode the given row positions."""
        return self.materialize()[indices]

    @property
    def nbytes(self) -> int:
        """Approximate storage footprint in bytes."""
        raise NotImplementedError  # pragma: no cover - abstract


class PlainVector(PhysicalVector):
    """Uncompressed fixed-width (or object/str) storage."""

    encoding = "plain"

    def __init__(self, values: np.ndarray):
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    def materialize(self) -> np.ndarray:
        return self._values

    def slice(self, start: int, stop: int) -> np.ndarray:
        return self._values[start:stop]

    def take(self, indices: np.ndarray) -> np.ndarray:
        return self._values[indices]

    @property
    def nbytes(self) -> int:
        if self._values.dtype == object:
            return int(sum(len(str(v)) for v in self._values)) + 8 * len(self._values)
        return int(self._values.nbytes)


class RleVector(PhysicalVector):
    """Run-length encoded storage for fixed-width values.

    Stored as parallel arrays ``values``/``counts``; ``starts`` is the
    exclusive prefix sum of counts. Decoding is ``np.repeat``; positional
    access binary-searches the starts.
    """

    encoding = "rle"

    def __init__(self, values: np.ndarray, counts: np.ndarray):
        if len(values) != len(counts):
            raise StorageError("RLE values/counts length mismatch")
        self.values = values
        self.counts = np.asarray(counts, dtype=np.int64)
        self.starts = np.concatenate(([0], np.cumsum(self.counts)[:-1])) if len(counts) else np.zeros(0, dtype=np.int64)
        self._length = int(self.counts.sum())

    @classmethod
    def from_plain(cls, values: np.ndarray) -> "RleVector":
        """Encode a plain array; empty input produces an empty vector."""
        n = len(values)
        if n == 0:
            return cls(values[:0], np.zeros(0, dtype=np.int64))
        change = np.empty(n, dtype=np.bool_)
        change[0] = True
        np.not_equal(values[1:], values[:-1], out=change[1:])
        run_starts = np.flatnonzero(change)
        run_values = values[run_starts]
        counts = np.diff(np.concatenate((run_starts, [n])))
        return cls(run_values, counts)

    def __len__(self) -> int:
        return self._length

    @property
    def n_runs(self) -> int:
        return len(self.values)

    def materialize(self) -> np.ndarray:
        return np.repeat(self.values, self.counts)

    def take(self, indices: np.ndarray) -> np.ndarray:
        run_idx = np.searchsorted(self.starts, indices, side="right") - 1
        return self.values[run_idx]

    def slice(self, start: int, stop: int) -> np.ndarray:
        if start >= stop:
            return self.values[:0]
        first = int(np.searchsorted(self.starts, start, side="right") - 1)
        last = int(np.searchsorted(self.starts, stop - 1, side="right") - 1)
        vals = self.values[first : last + 1]
        counts = self.counts[first : last + 1].copy()
        counts[0] -= start - int(self.starts[first])
        counts[-1] = (stop - max(start, int(self.starts[last]))) if last > first else counts[-1]
        if last == first:
            counts[0] = stop - start
        return np.repeat(vals, counts)

    def index_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the (value, count, start) arrays of the IndexTable.

        The optimizer materializes these as a small table, applies the
        query's filter to the ``value`` column and joins the surviving
        ranges back to the main table — expressing range skipping "simply
        as a join in the query plan" (paper 4.3).
        """
        return self.values, self.counts, self.starts

    def runs(self) -> Iterator[tuple[int, int, object]]:
        """Yield (start, count, value) triples in row order."""
        for v, c, s in zip(self.values, self.counts, self.starts):
            yield int(s), int(c), v

    def expand_runs(self, per_run: np.ndarray, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Expand a per-run array to per-row values over ``[start, stop)``.

        The per-run/per-row bridge of code-space execution: a predicate
        evaluated once per run (``per_run``) becomes a row mask without
        ever materializing the decoded column.
        """
        stop = self._length if stop is None else stop
        return np.repeat(per_run, self.counts)[start:stop]

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.counts.nbytes)


class DeltaVector(PhysicalVector):
    """Delta encoding for int64-backed values (ids, dates, timestamps).

    Stores the first value and successive differences in the narrowest
    integer dtype that fits. Decoding is a cumulative sum.
    """

    encoding = "delta"

    def __init__(self, base: int, deltas: np.ndarray, dtype: np.dtype = np.dtype(np.int64)):
        self.base = int(base)
        self.deltas = deltas
        self._out_dtype = dtype
        self._length = len(deltas) + 1 if len(deltas) or base is not None else 0

    @classmethod
    def from_plain(cls, values: np.ndarray) -> "DeltaVector":
        if len(values) == 0:
            raise StorageError("cannot delta-encode an empty vector")
        diffs = np.diff(values.astype(np.int64))
        for candidate in (np.int8, np.int16, np.int32):
            info = np.iinfo(candidate)
            if len(diffs) == 0 or (diffs.min() >= info.min and diffs.max() <= info.max):
                return cls(int(values[0]), diffs.astype(candidate), values.dtype)
        return cls(int(values[0]), diffs, values.dtype)

    def __len__(self) -> int:
        return len(self.deltas) + 1

    def materialize(self) -> np.ndarray:
        out = np.empty(len(self), dtype=np.int64)
        out[0] = self.base
        np.cumsum(self.deltas, out=out[1:], dtype=np.int64)
        out[1:] += self.base
        return out.astype(self._out_dtype, copy=False)

    @property
    def nbytes(self) -> int:
        return int(self.deltas.nbytes) + 8


#: Minimum average run length for RLE to be chosen over plain storage.
RLE_MIN_AVG_RUN = 2.0


def encode_best(values: np.ndarray, *, prefer: str | None = None) -> PhysicalVector:
    """Choose a storage encoding for a plain array.

    ``prefer`` forces ``"plain"``, ``"rle"`` or ``"delta"``; otherwise the
    encoder picks RLE when the average run length is at least
    ``RLE_MIN_AVG_RUN``, delta for monotone-ish int64 data whose deltas fit
    in 16 bits, and plain otherwise. Object (string) arrays are never
    encoded here — they go through dictionary compression first, after
    which their codes can be encoded.
    """
    if prefer == "plain":
        return PlainVector(values)
    if prefer == "rle":
        return RleVector.from_plain(values)
    if prefer == "delta":
        return DeltaVector.from_plain(values)
    if prefer is not None:
        raise StorageError(f"unknown encoding preference {prefer!r}")
    n = len(values)
    if n == 0 or values.dtype == object:
        return PlainVector(values)
    rle = RleVector.from_plain(values)
    if n / max(rle.n_runs, 1) >= RLE_MIN_AVG_RUN:
        return rle
    if values.dtype.kind == "i" and n >= 2:
        diffs = np.diff(values.astype(np.int64))
        if len(diffs) and diffs.min() >= -32768 and diffs.max() <= 32767:
            return DeltaVector.from_plain(values)
    return PlainVector(values)
