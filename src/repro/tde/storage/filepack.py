"""Single-file packing of a TDE database (paper 4.1.1).

"The TDE has a simple on-disk storage layout, which makes packing the entire
database into a single file easy. ... This directory is packaged into a
single file once created."

We mirror the directory-per-namespace layout inside a ZIP container:

    manifest.json
    <schema>/<table>/<column>.npy        (fixed-width storage values)
    <schema>/<table>/<column>.json       (string values, heap side)
    <schema>/<table>/<column>.mask.npy   (null mask, when any NULLs)

Columns are stored decoded; dictionary compression and lightweight
encodings are rebuilt at load time from recorded hints, which keeps the
format simple and version-tolerant at the cost of some load-time work.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path

import numpy as np

from ...collation import get_collation
from ...datatypes import LogicalType
from ...errors import StorageError
from .column import Column
from .schema import Database
from .table import Table

FORMAT_VERSION = 1


def pack_database(db: Database, path) -> None:
    """Write ``db`` to a single file at ``path`` (path or binary file object)."""
    if isinstance(path, (str, Path)):
        path = Path(path)
    manifest: dict = {"version": FORMAT_VERSION, "name": db.name, "schemas": {}}
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        for schema_name, table_name, table in db.iter_tables():
            schema_entry = manifest["schemas"].setdefault(schema_name, {"tables": {}})
            col_entries = []
            for col_name, col in table.columns.items():
                entry = {
                    "name": col_name,
                    "type": col.ltype.value,
                    "collation": col.collation.name,
                    "compressed": col.is_dictionary_encoded,
                    "encoding": col.encoding if len(col) else "plain",
                    "has_nulls": col.null_mask is not None,
                }
                base = f"{schema_name}/{table_name}/{col_name}"
                storage = col.storage_values()
                if col.ltype is LogicalType.STR:
                    zf.writestr(f"{base}.json", json.dumps(list(storage)))
                else:
                    zf.writestr(f"{base}.npy", _npy_bytes(storage))
                if col.null_mask is not None:
                    zf.writestr(f"{base}.mask.npy", _npy_bytes(col.null_mask))
                col_entries.append(entry)
            schema_entry["tables"][table_name] = {
                "sort_keys": list(table.sort_keys),
                "row_count": table.n_rows,
                "columns": col_entries,
            }
        zf.writestr("manifest.json", json.dumps(manifest, indent=1))


def unpack_database(path) -> Database:
    """Load a database previously written by :func:`pack_database`.

    Accepts a filesystem path or a binary file object.
    """
    if isinstance(path, (str, Path)):
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no database file at {path}")
    with zipfile.ZipFile(path, "r") as zf:
        try:
            manifest = json.loads(zf.read("manifest.json"))
        except KeyError:
            raise StorageError(f"{path} is not a packed TDE database") from None
        if manifest.get("version") != FORMAT_VERSION:
            raise StorageError(f"unsupported format version {manifest.get('version')}")
        db = Database(manifest["name"])
        for schema_name, schema_entry in manifest["schemas"].items():
            for table_name, table_entry in schema_entry["tables"].items():
                cols: dict[str, Column] = {}
                for entry in table_entry["columns"]:
                    col_name = entry["name"]
                    ltype = LogicalType(entry["type"])
                    base = f"{schema_name}/{table_name}/{col_name}"
                    if ltype is LogicalType.STR:
                        raw = json.loads(zf.read(f"{base}.json"))
                        values = np.empty(len(raw), dtype=object)
                        values[:] = raw
                    else:
                        values = _read_npy(zf, f"{base}.npy")
                    mask = _read_npy(zf, f"{base}.mask.npy") if entry["has_nulls"] else None
                    encoding = entry["encoding"]
                    hint = encoding if encoding in ("rle", "delta") and len(values) else None
                    cols[col_name] = Column.from_numpy(
                        values,
                        ltype,
                        null_mask=mask,
                        collation=get_collation(entry["collation"]),
                        compress=entry["compressed"],
                        encoding=hint,
                    )
                table = Table(
                    cols, sort_keys=table_entry["sort_keys"], name=f"{schema_name}.{table_name}"
                )
                db.add_table(f"{schema_name}.{table_name}", table)
    return db


def _npy_bytes(arr: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.save(buf, arr, allow_pickle=False)
    return buf.getvalue()


def _read_npy(zf: zipfile.ZipFile, name: str) -> np.ndarray:
    return np.load(io.BytesIO(zf.read(name)), allow_pickle=False)
