"""Physical-plan cache: skip parse/bind/optimize for repeat queries.

Dashboards re-issue the same TQL on every interaction (paper §3.1's
"compile once" observation): the text differs only in whitespace, name
quoting, or the side a literal sits on. This module gives the engine a
bounded LRU of *compiled physical plans* keyed on

    (normalized TQL, catalog version, planner-options fingerprint)

so the second load of a dashboard skips the whole compile phase.

Normalization is semantic, not textual: the text is parsed and printed
back through the canonical s-expression printer, after flipping
literal-first comparisons (``5 < x`` → ``x > 5``). Whitespace and
quoted-vs-bare name variants collapse for free because the parser never
sees them differently.

Staleness is handled two ways, both required:

* the key embeds :attr:`StorageCatalog.version`, so DDL (create/drop
  table, new constraint declarations) silently misses rather than
  serving a plan bound to dead storage;
* :meth:`PlanCache.invalidate` bumps a generation counter *before*
  clearing, and :meth:`PlanCache.put` refuses entries compiled under an
  older generation. A compile that raced an extract refresh can never
  resurrect its stale plan after ``invalidate()`` returns — the
  guarantee the two-thread race test pins.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import fields
from typing import Any

from .. import obs
from ..expr.ast import AggExpr, Call, CaseWhen, Cast, Expr, Literal
from .tql.parser import parse_tql, to_tql
from .tql.plan import Aggregate, LogicalPlan, Project, Select, transform_up

#: Comparison flips for literal-first operands: ``5 < x`` ≡ ``x > 5``.
_FLIP = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _canonical_expr(expr: Expr) -> Expr:
    if isinstance(expr, Call):
        args = tuple(_canonical_expr(a) for a in expr.args)
        if (
            expr.func in _FLIP
            and len(args) == 2
            and isinstance(args[0], Literal)
            and not isinstance(args[1], Literal)
        ):
            return Call(_FLIP[expr.func], (args[1], args[0]))
        return expr if args == expr.args else Call(expr.func, args)
    if isinstance(expr, Cast):
        arg = _canonical_expr(expr.arg)
        return expr if arg is expr.arg else Cast(arg, expr.to)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            tuple((_canonical_expr(c), _canonical_expr(v)) for c, v in expr.branches),
            _canonical_expr(expr.otherwise),
        )
    return expr


def _canonical_node(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Select):
        return Select(plan.child, _canonical_expr(plan.predicate))
    if isinstance(plan, Project):
        return Project(plan.child, [(n, _canonical_expr(e)) for n, e in plan.items])
    if isinstance(plan, Aggregate):
        aggs = [
            (name, AggExpr(a.func, _canonical_expr(a.arg)) if a.arg is not None else a)
            for name, a in plan.aggs
        ]
        return Aggregate(plan.child, plan.groupby, aggs)
    return plan


def normalize_tql(text: str) -> str:
    """Canonical cache-key text for a TQL query string."""
    return to_tql(transform_up(parse_tql(text), _canonical_node))


def options_fingerprint(options: Any) -> tuple:
    """Hashable identity of a ``PlannerOptions`` — plans compiled under
    different options are different plans."""
    return tuple(getattr(options, f.name) for f in fields(options))


class PlanCache:
    """Bounded LRU of compiled physical plans, thread-safe.

    ``capacity=0`` disables the cache entirely (every :meth:`get` is a
    recorded miss-free no-op and :meth:`put` drops its argument), so
    callers never need an enabled check around the lookup path.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = int(capacity)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def generation(self) -> int:
        """Snapshot the generation *before* compiling; pass it back to
        :meth:`put` so a concurrent invalidation voids the entry."""
        with self._lock:
            return self._generation

    def get(self, key: tuple) -> Any | None:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if obs.events_enabled():
                    obs.event("plan_cache.miss", outcome="miss", reason="absent")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if obs.events_enabled():
            obs.event("plan_cache.hit", "hit", "reused the compiled physical plan")
        return entry

    def put(self, key: tuple, plan: Any, generation: int) -> bool:
        """Insert unless ``generation`` is stale; True when stored."""
        if not self.enabled:
            return False
        evicted = 0
        with self._lock:
            if generation != self._generation:
                if obs.events_enabled():
                    obs.event(
                        "plan_cache.invalidate",
                        outcome="rejected",
                        reason="stale_generation",
                    )
                return False
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and obs.events_enabled():
            obs.event("plan_cache.evict", outcome="evicted", reason="lru", count=evicted)
        return True

    def invalidate(self, reason: str = "refresh") -> int:
        """Drop everything; returns the number of entries dropped.

        The generation bump happens under the same lock as the clear, so
        once this returns no in-flight compile (which snapshotted the old
        generation) can re-insert a pre-invalidation plan.
        """
        with self._lock:
            self._generation += 1
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
        if obs.events_enabled():
            obs.event(
                "plan_cache.invalidate", outcome="cleared", reason=reason, dropped=dropped
            )
        return dropped

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
