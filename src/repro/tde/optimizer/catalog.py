"""Optimizer-facing catalog: schemas, storage tables, and metadata.

The query compiler "incorporates information about cardinalities, domains,
and overall capabilities" (paper 3.1); for the TDE that information lives
here: declared unique keys, declared sort order, and foreign-key
relationships used by join culling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datatypes import LogicalType
from ...errors import BindError
from ..storage.schema import Database
from ..storage.table import Table


@dataclass(frozen=True)
class TableMeta:
    """Declared constraints for one stored table."""

    unique_keys: tuple[tuple[str, ...], ...] = ()

    def is_unique(self, columns: tuple[str, ...]) -> bool:
        """Whether ``columns`` is a superset of some declared unique key."""
        colset = set(columns)
        return any(set(key) <= colset for key in self.unique_keys)


@dataclass(frozen=True)
class ForeignKey:
    """A declared FK: ``child.fk_columns`` references ``parent.key_columns``.

    ``total`` declares that every child value is present (no orphans) and
    child FK columns are non-NULL — required to drop an unused dimension.
    ``onto`` declares that every parent key appears in some child row —
    required for fact-table culling to preserve domain-query results.
    """

    child: str
    fk_columns: tuple[str, ...]
    parent: str
    key_columns: tuple[str, ...]
    total: bool = True
    onto: bool = False


class StorageCatalog:
    """Catalog over a :class:`Database` plus declared metadata."""

    def __init__(self, db: Database):
        self._db = db
        self._metas: dict[str, TableMeta] = {}
        self._fks: list[ForeignKey] = []
        self._decl_version = 0

    @property
    def version(self) -> tuple[int, int]:
        """(DDL version, declaration version) — plans bound under a
        different pair may reference dropped tables or miss constraints
        that would change the plan, so the plan cache keys on this."""
        return (self._db.version, self._decl_version)

    # ------------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------------ #
    def declare_unique(self, table: str, columns: tuple[str, ...] | list[str]) -> None:
        table = self._qualify(table)
        meta = self._metas.get(table, TableMeta())
        self._metas[table] = TableMeta(meta.unique_keys + (tuple(columns),))
        self._decl_version += 1

    def declare_foreign_key(
        self,
        child: str,
        fk_columns,
        parent: str,
        key_columns,
        *,
        total: bool = True,
        onto: bool = False,
    ) -> None:
        self._fks.append(
            ForeignKey(
                self._qualify(child),
                tuple(fk_columns),
                self._qualify(parent),
                tuple(key_columns),
                total,
                onto,
            )
        )
        self._decl_version += 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def schema_of(self, table: str) -> dict[str, LogicalType]:
        try:
            return self.storage(table).schema()
        except Exception as exc:
            raise BindError(f"unknown table {table!r}") from exc

    def storage(self, table: str) -> Table:
        return self._db.table(self._qualify(table))

    def meta(self, table: str) -> TableMeta:
        return self._metas.get(self._qualify(table), TableMeta())

    def foreign_key(self, child: str, fk_columns, parent: str, key_columns) -> ForeignKey | None:
        child = self._qualify(child)
        parent = self._qualify(parent)
        want_fk = tuple(fk_columns)
        want_key = tuple(key_columns)
        for fk in self._fks:
            if (
                fk.child == child
                and fk.parent == parent
                and fk.fk_columns == want_fk
                and fk.key_columns == want_key
            ):
                return fk
        return None

    def sort_keys(self, table: str) -> tuple[str, ...]:
        return self.storage(table).sort_keys

    def row_count(self, table: str) -> int:
        return self.storage(table).n_rows

    def _qualify(self, table: str) -> str:
        schema, name = Database.split_name(table)
        return f"{schema}.{name}"
