"""Leveraging RLE encoding for query execution (paper 4.3).

"For a run length encoded column, the optimizer can generate an
IndexTable, which consists of three columns: value, count and start. ...
combining with the operator pushdown allows the optimizer to push a filter
condition on the run length encoded column to the IndexTable ... we
implement the join that translates the range specifications directly into
disk accesses."

:func:`choose_rle_scan` inspects a scan's filter conjuncts and decides
whether to run the scan through :class:`PIndexedRleScan` — the physical
embodiment of the IndexTable join. The decision is guarded by estimated
selectivity because "the specific approach described above does not always
make the query execution faster": an unselective filter reads everything
anyway, and index scans reduce the available degree of parallelism.
"""

from __future__ import annotations

from ...expr.ast import Expr, columns_used, conjoin
from ..storage.table import Table
from ..storage.vectors import RleVector
from . import provenance
from .cost import estimate_selectivity

#: Only use the IndexTable path below this estimated selectivity.
RLE_SELECTIVITY_THRESHOLD = 0.35

#: Require some actual run structure for range skipping to pay off.
RLE_MIN_AVG_RUN_LENGTH = 4.0


def choose_rle_scan(
    table: Table,
    conjuncts: list[Expr],
    *,
    selectivity_threshold: float = RLE_SELECTIVITY_THRESHOLD,
) -> tuple[str, Expr, Expr | None] | None:
    """Pick a (column, index_predicate, residual) split, or None.

    Groups the filter conjuncts per single-column reference, finds columns
    whose physical vector is run-length encoded with long-enough runs, and
    selects the most selective candidate. Remaining conjuncts become the
    residual filter applied to the scanned ranges.
    """
    rule = "decompression.rle_index"
    explain = provenance.active()
    by_column: dict[str, list[Expr]] = {}
    for conj in conjuncts:
        used = columns_used(conj)
        if len(used) == 1:
            by_column.setdefault(next(iter(used)), []).append(conj)
    best: tuple[float, str, Expr] | None = None
    for name in sorted(by_column):
        parts = by_column[name]
        if not table.has_column(name):
            continue
        col = table.column(name)
        if not isinstance(col.physical, RleVector):
            if explain:
                provenance.note(
                    rule, False, f"column {name} is not run-length encoded", column=name
                )
            continue
        n_rows = max(len(col), 1)
        avg_run = n_rows / max(col.physical.n_runs, 1)
        if avg_run < RLE_MIN_AVG_RUN_LENGTH:
            if explain:
                provenance.note(
                    rule,
                    False,
                    f"column {name}: average run length {avg_run:.1f} below "
                    f"{RLE_MIN_AVG_RUN_LENGTH:.0f} — range skipping would not pay off",
                    column=name,
                )
            continue
        predicate = conjoin(parts)
        sel = _exact_run_selectivity(col, predicate)
        if sel is None:
            sel = estimate_selectivity(predicate)
        if sel >= selectivity_threshold:
            if explain:
                provenance.note(
                    rule,
                    False,
                    f"column {name}: selectivity {sel:.2f} >= threshold "
                    f"{selectivity_threshold:.2f} — a full scan reads less per row",
                    column=name,
                )
            continue
        if best is None or sel < best[0]:
            best = (sel, name, predicate)
    if best is None:
        return None
    sel, column, predicate = best
    if explain:
        provenance.note(
            rule,
            True,
            f"filter on {column} served through the IndexTable "
            f"(selectivity {sel:.2f} < {selectivity_threshold:.2f}, long runs)",
            column=column,
        )
    residual_parts = [c for c in conjuncts if columns_used(c) != {column}]
    return column, predicate, conjoin(residual_parts)


def _exact_run_selectivity(col, predicate) -> float | None:
    """Exact fraction of rows a single-column predicate keeps.

    The IndexTable is tiny (one row per run), so evaluating the predicate
    against it is far cheaper than a scan — this is the same "use the
    compression as an index" insight as the rewrite itself.
    """
    from ...errors import ReproError
    from ..storage.column import Column
    from ..storage.table import Table
    from ..storage.vectors import PlainVector
    from ...expr.eval import evaluate_predicate

    vec = col.physical
    try:
        values, counts, _starts = vec.index_table()
    except AttributeError:
        return None
    decoded = col.dictionary.decode(values) if col.dictionary is not None else values
    # Find the column name from the predicate (it references exactly one).
    names = columns_used(predicate)
    name = next(iter(names))
    index_tbl = Table({name: Column(col.ltype, PlainVector(decoded), collation=col.collation)})
    try:
        keep = evaluate_predicate(predicate, index_tbl)
    except ReproError:
        return None
    total = max(int(counts.sum()), 1)
    return float(counts[keep].sum()) / total
