"""Optimizer decision provenance: which rules fired, declined, and why.

The paper's workflow for every optimization was "explain *why* a query
was slow" — which requires the optimizer to say what it did. This module
is the recording channel: rewrite rules, the culling pass, the RLE index
chooser and the parallelizer call :func:`note` at each decision point,
and :func:`collect` gathers the notes for one planning run.

The channel is a ``contextvars.ContextVar`` holding the active collector
(default ``None``), so the planner's normal path pays one contextvar read
per decision and allocates nothing — provenance only materializes inside
``engine.explain()`` (or any caller that opens :func:`collect`).
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class RuleNote:
    """One optimizer decision: rule name, fired-or-declined, and why."""

    rule: str  # e.g. "pushdown_selects", "culling.dimension_removal"
    fired: bool
    detail: str  # human-readable reason / description of the effect
    attributes: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        verdict = "fired" if self.fired else "declined"
        return f"{self.rule}: {verdict} — {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "fired": self.fired,
            "detail": self.detail,
            "attributes": dict(self.attributes),
        }


class ProvenanceCollector:
    """Accumulates :class:`RuleNote` for one planning run (single thread)."""

    def __init__(self) -> None:
        self.notes: list[RuleNote] = []

    def note(self, rule: str, fired: bool, detail: str, **attributes: Any) -> None:
        self.notes.append(RuleNote(rule, fired, detail, attributes))

    def fired(self) -> list[RuleNote]:
        return [n for n in self.notes if n.fired]

    def declined(self) -> list[RuleNote]:
        return [n for n in self.notes if not n.fired]


_COLLECTOR: contextvars.ContextVar[ProvenanceCollector | None] = contextvars.ContextVar(
    "tde-optimizer-provenance", default=None
)


def note(rule: str, fired: bool, detail: str, **attributes: Any) -> None:
    """Record one decision if a collector is active; free otherwise."""
    collector = _COLLECTOR.get()
    if collector is not None:
        collector.note(rule, fired, detail, **attributes)


def active() -> bool:
    """Whether provenance is being collected (guards costly detail text)."""
    return _COLLECTOR.get() is not None


class collect:
    """Context manager installing a fresh collector; yields it."""

    def __init__(self) -> None:
        self.collector = ProvenanceCollector()

    def __enter__(self) -> ProvenanceCollector:
        self._token = _COLLECTOR.set(self.collector)
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> bool:
        _COLLECTOR.reset(self._token)
        return False


def iter_notes(collector: ProvenanceCollector) -> Iterator[RuleNote]:
    return iter(collector.notes)
