"""Logical rewrites: normalization, predicate simplification, pushdown.

These are the "classic rewrites" of paper 4.1.2 (DISTINCT expressed as
GROUP BY) together with the predicate work of 3.1 (predicate
simplification) and the filter/project push-down the TDE optimizer
performs. All rewrites preserve results; the property-based tests compare
optimized vs naive execution.
"""

from __future__ import annotations

import contextvars
from typing import Mapping

import numpy as np

from ...datatypes import LogicalType
from ...errors import ReproError
from ...expr.ast import (
    Call,
    ColumnRef,
    Expr,
    Literal,
    columns_used,
    conjoin,
    conjuncts,
    substitute,
)
from ..storage.column import Column
from ..storage.table import Table
from ..storage.vectors import PlainVector
from ..tql.plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
    transform_up,
)

_TRUE = Literal(True)
_FALSE = Literal(False)


# ---------------------------------------------------------------------- #
# Predicate simplification
# ---------------------------------------------------------------------- #
def _is_const(expr: Expr) -> bool:
    return all(isinstance(node, (Literal, Call)) for node in expr.walk()) and not columns_used(
        expr
    )


_FOLD_TABLE = Table(
    {"__one": Column(LogicalType.INT, PlainVector(np.zeros(1, dtype=np.int64)))}
)


def _fold(expr: Expr) -> Expr:
    """Evaluate a constant expression down to a literal."""
    from ...expr.eval import evaluate
    from ...expr.ast import infer_type
    from ...datatypes import from_storage

    try:
        ltype = infer_type(expr, {})
        values, mask = evaluate(expr, _FOLD_TABLE)
        if mask is not None and mask[0]:
            return Literal(None, ltype)
        return Literal(from_storage(values[0], ltype), ltype)
    except ReproError:
        return expr


def simplify_predicate(expr: Expr) -> Expr:
    """Bottom-up predicate simplification.

    Handles boolean short-circuits (AND/OR with constants), double
    negation, empty/singleton IN lists, and folds literal-only subtrees.
    """
    if isinstance(expr, (Literal, ColumnRef)):
        return expr
    if isinstance(expr, Call):
        args = tuple(simplify_predicate(a) for a in expr.args)
        expr = Call(expr.func, args)
        if expr.func == "and":
            a, b = args
            if a == _TRUE:
                return b
            if b == _TRUE:
                return a
            if _FALSE in (a, b):
                return _FALSE
        elif expr.func == "or":
            a, b = args
            if a == _FALSE:
                return b
            if b == _FALSE:
                return a
            if _TRUE in (a, b):
                return _TRUE
        elif expr.func == "not":
            (a,) = args
            if isinstance(a, Call) and a.func == "not":
                return a.args[0]
            if a == _TRUE:
                return _FALSE
            if a == _FALSE:
                return _TRUE
        elif expr.func == "in":
            target, lst = args
            if isinstance(lst, Literal) and isinstance(lst.value, tuple):
                if len(lst.value) == 0:
                    return _FALSE
                if len(lst.value) == 1:
                    return simplify_predicate(Call("=", (target, Literal(lst.value[0]))))
        if _is_const(expr):
            return _fold(expr)
        return expr
    # Cast / CaseWhen: fold when constant, otherwise leave intact.
    if _is_const(expr):
        return _fold(expr)
    return expr


def simplify_plan_predicates(plan: LogicalPlan) -> LogicalPlan:
    """Simplify every Select predicate; drop always-true filters."""

    def fn(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Select):
            pred = simplify_predicate(node.predicate)
            if pred == _TRUE:
                return node.child
            return Select(node.child, pred)
        return node

    return transform_up(plan, fn)


# ---------------------------------------------------------------------- #
# Normalization
# ---------------------------------------------------------------------- #
def distinct_to_aggregate(plan: LogicalPlan) -> LogicalPlan:
    """Express DISTINCT as GROUP BY (paper 4.1.2)."""

    def fn(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Distinct):
            return Aggregate(node.child, node.columns, ())
        return node

    return transform_up(plan, fn)


def merge_selects(plan: LogicalPlan) -> LogicalPlan:
    """Collapse stacked Selects into one conjunction."""

    def fn(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Select) and isinstance(node.child, Select):
            merged = conjoin(conjuncts(node.predicate) + conjuncts(node.child.predicate))
            return Select(node.child.child, merged)
        return node

    return transform_up(plan, fn)


# ---------------------------------------------------------------------- #
# Predicate pushdown
# ---------------------------------------------------------------------- #
def pushdown_selects(plan: LogicalPlan) -> LogicalPlan:
    """Push filters toward the scans wherever semantics allow."""

    def fn(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Select):
            return _push(node.predicate, node.child)
        return node

    return transform_up(plan, fn)


def _push(predicate: Expr, child: LogicalPlan) -> LogicalPlan:
    if isinstance(child, Select):
        merged = conjoin(conjuncts(predicate) + conjuncts(child.predicate))
        return _push(merged, child.child)
    if isinstance(child, Project):
        mapping: Mapping[str, Expr] = {name: expr for name, expr in child.items}
        if columns_used(predicate) <= set(mapping):
            pushed = substitute(predicate, mapping)
            return Project(_push(pushed, child.child), child.items)
        return Select(child, predicate)
    if isinstance(child, Order):
        return Order(_push(predicate, child.child), child.keys)
    if isinstance(child, Join):
        return _push_into_join(predicate, child)
    if isinstance(child, Aggregate):
        groupby = set(child.groupby)
        below, above = [], []
        for conj in conjuncts(predicate):
            (below if columns_used(conj) <= groupby else above).append(conj)
        inner: LogicalPlan = child
        if below:
            inner = Aggregate(_push(conjoin(below), child.child), child.groupby, child.aggs)
        if above:
            return Select(inner, conjoin(above))
        return inner
    # TopN / Limit / TableScan / anything else: stop here.
    return Select(child, predicate)


def _push_into_join(predicate: Expr, join: Join) -> LogicalPlan:
    left_cols = _output_columns(join.left)
    right_cols = _output_columns(join.right)
    right_keys = {r for _, r in join.conditions}
    key_map = {l: r for l, r in join.conditions}
    left_parts: list[Expr] = []
    right_parts: list[Expr] = []
    rest: list[Expr] = []
    for conj in conjuncts(predicate):
        used = columns_used(conj)
        if used <= left_cols:
            left_parts.append(conj)
            # A filter purely on the join keys also prunes the build side.
            if join.kind == "inner" and used and used <= set(key_map):
                right_parts.append(
                    substitute(conj, {l: ColumnRef(r) for l, r in key_map.items()})
                )
        elif used <= (right_cols - right_keys):
            if join.kind == "inner":
                right_parts.append(conj)
            else:
                rest.append(conj)  # filtering the right of a LEFT join differs
        else:
            rest.append(conj)
    new_left = _push(conjoin(left_parts), join.left) if left_parts else join.left
    new_right = _push(conjoin(right_parts), join.right) if right_parts else join.right
    out: LogicalPlan = Join(join.kind, join.conditions, new_left, new_right)
    if rest:
        out = Select(out, conjoin(rest))
    return out


def _output_columns(plan: LogicalPlan) -> set[str]:
    """Output column names without needing a catalog (scans excluded).

    For subtrees rooted at scans we cannot know the schema here, so join
    pushdown is invoked from :func:`rewrite_logical`, which wraps this
    with catalog knowledge via ``_SCHEMA_HINTS``.
    """
    if isinstance(plan, TableScan):
        hints = _SCHEMA_HINTS.get()
        if hints is None:
            raise ReproError("pushdown requires schema hints; use rewrite_logical")
        return set(hints.schema_of(plan.table))
    if isinstance(plan, Project):
        return {name for name, _ in plan.items}
    if isinstance(plan, Aggregate):
        return set(plan.groupby) | {name for name, _ in plan.aggs}
    if isinstance(plan, Distinct):
        return set(plan.columns)
    if isinstance(plan, Join):
        right_keys = {r for _, r in plan.conditions}
        return _output_columns(plan.left) | (_output_columns(plan.right) - right_keys)
    if isinstance(plan, (Select, Order, TopN, Limit)):
        return _output_columns(plan.child)
    if isinstance(plan, Window):
        return _output_columns(plan.child) | {item.alias for item in plan.items}
    raise ReproError(f"unknown plan node {type(plan).__name__}")


_SCHEMA_HINTS: contextvars.ContextVar = contextvars.ContextVar("schema_hints", default=None)


# ---------------------------------------------------------------------- #
# Top-level rewrite pipeline
# ---------------------------------------------------------------------- #
#: The rewrite pipeline stages, in application order. Each entry names
#: the rule (for provenance) and the effect a change implies.
_REWRITE_STAGES: tuple[tuple[str, str], ...] = (
    ("distinct_to_aggregate", "DISTINCT expressed as GROUP BY"),
    ("simplify_predicates", "predicates simplified / constant-folded"),
    ("merge_selects", "stacked filters merged into one conjunction"),
    ("pushdown_selects", "filters pushed toward the scans"),
    ("simplify_predicates", "predicates simplified after pushdown"),
    ("cull_joins", "unused-dimension / fact-table joins removed"),
    ("merge_selects", "stacked filters merged after culling"),
)


def rewrite_logical(plan: LogicalPlan, catalog) -> LogicalPlan:
    """Run the full logical rewrite pipeline.

    ``catalog`` must provide ``schema_of`` (and, for join culling, the
    metadata methods of :class:`~repro.tde.optimizer.catalog.StorageCatalog`).

    Each stage reports provenance (see :mod:`.provenance`): whether it
    changed the plan, so EXPLAIN can list the rewrites that shaped it.
    """
    from . import provenance
    from .culling import cull_joins

    stages = {
        "distinct_to_aggregate": distinct_to_aggregate,
        "simplify_predicates": simplify_plan_predicates,
        "merge_selects": merge_selects,
        "pushdown_selects": pushdown_selects,
        "cull_joins": (
            (lambda p: cull_joins(p, catalog)) if hasattr(catalog, "meta") else None
        ),
    }
    token = _SCHEMA_HINTS.set(catalog)
    try:
        for rule, effect in _REWRITE_STAGES:
            fn = stages[rule]
            if fn is None:
                provenance.note(
                    f"rewrite.{rule}", False, "catalog exposes no table metadata"
                )
                continue
            rewritten = fn(plan)
            if provenance.active():
                changed = rewritten != plan
                provenance.note(
                    f"rewrite.{rule}",
                    changed,
                    effect if changed else "plan already in target form",
                )
            plan = rewritten
        return plan
    finally:
        _SCHEMA_HINTS.reset(token)


# ---------------------------------------------------------------------- #
# Physical rewrite: pipeline fusion (paper 4.1)
# ---------------------------------------------------------------------- #
def fuse_pipelines(root, options):
    """Collapse adjacent PFilter/PProject/PHashAggregate chains — and the
    PScan they sit on — into :class:`~repro.tde.exec.fused.PFusedPipeline`
    operators.

    Runs on the *physical* tree after Exchange insertion, so each parallel
    fragment fuses independently and fraction boundaries are untouched.
    A chain is fused only when it folds at least two operators' worth of
    per-batch work (an aggregate, a projection, a filter, or a scan with a
    pushed-down predicate); bare scans and lone operators stay as they
    are, because gather-based fusion would only add copies there.

    The walk rewrites children in place: physical plans are private to one
    ``plan_query`` call, so no sharing hazard exists (cached plans are
    fused *before* they enter the plan cache).
    """
    from ... import obs
    from ..exec import physical as ph
    from ..exec.fused import PFusedPipeline
    from . import provenance

    fused_chains: list[tuple[str, ...]] = []

    def try_fuse(node):
        groupby = specs = items = pred = None
        ops: list[str] = []
        cur = node
        if isinstance(cur, ph.PHashAggregate):
            groupby, specs = list(cur.groupby), list(cur.specs)
            ops.append("aggregate")
            cur = cur.child
        while True:
            if isinstance(cur, ph.PProject):
                # Re-express the accumulated state in the lower project's
                # input space; filter-before-project stays equivalent
                # because projections only rename/compute, never filter.
                lower = dict(cur.items)
                items = (
                    list(cur.items)
                    if items is None
                    else [(n, substitute(e, lower)) for n, e in items]
                )
                if pred is not None:
                    pred = substitute(pred, lower)
                ops.append("project")
                cur = cur.child
                continue
            if isinstance(cur, ph.PFilter):
                pred = conjoin(conjuncts(cur.predicate) + conjuncts(pred))
                ops.append("filter")
                cur = cur.child
                continue
            break
        if isinstance(cur, ph.PScan):
            if cur.predicate is not None:
                pred = conjoin(conjuncts(cur.predicate) + conjuncts(pred))
                ops.append("scan_filter")
            if len(ops) < 2:
                return None
            ops.append("scan")
            fused_chains.append(tuple(reversed(ops)))
            return PFusedPipeline(
                table=cur.table,
                columns=cur.columns,
                start=cur.start,
                stop=cur.stop,
                predicate=pred,
                items=items,
                groupby=groupby,
                specs=specs,
                fused_ops=tuple(reversed(ops)),
                code_space=options.enable_code_space,
            )
        if len(ops) < 2:
            return None
        fused_chains.append(tuple(reversed(ops)))
        return PFusedPipeline(
            source=cur,
            predicate=pred,
            items=items,
            groupby=groupby,
            specs=specs,
            fused_ops=tuple(reversed(ops)),
            code_space=options.enable_code_space,
        )

    def visit(node):
        replacement = try_fuse(node)
        if replacement is not None:
            node = replacement
        for attr in ("child", "probe", "build_source", "source"):
            child = getattr(node, attr, None)
            if isinstance(child, ph.PhysNode):
                setattr(node, attr, visit(child))
        inputs = getattr(node, "inputs", None)
        if inputs:
            node.inputs = [visit(child) for child in inputs]
        return node

    root = visit(root)
    if provenance.active():
        if fused_chains:
            for chain in fused_chains:
                provenance.note(
                    "fuse.pipeline",
                    True,
                    f"fused {'+'.join(chain)} into one per-batch pass",
                )
        else:
            provenance.note(
                "fuse.pipeline", False, "no fusable operator chain in this plan"
            )
    if fused_chains and obs.events_enabled():
        obs.event(
            "fuse.pipeline",
            "fused",
            "collapsed filter/project/aggregate chains into single-pass operators",
            chains=len(fused_chains),
            ops=sum(len(c) for c in fused_chains),
        )
    return root
