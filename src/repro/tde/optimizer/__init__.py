"""The TDE's rule-based optimizer (paper 4.1.2, 4.2).

Pipeline: logical rewrites (``rules``: DISTINCT→GROUP BY, predicate
simplification and pushdown, select merging), join culling (``culling``:
unused-dimension removal and fact-table culling), property derivation
(``properties``: sortedness, uniqueness), physical planning (``planner``:
operator selection incl. streaming aggregates and the RLE IndexTable scan
from ``decompression``), and parallel plan generation (``parallel``:
Exchange insertion, local/global aggregation, range-partitioned
aggregation per Lemmas 1–3).
"""

from .catalog import ForeignKey, StorageCatalog, TableMeta
from .planner import PlannerOptions, plan_query
from .rules import rewrite_logical, simplify_predicate

__all__ = [
    "StorageCatalog",
    "TableMeta",
    "ForeignKey",
    "PlannerOptions",
    "plan_query",
    "rewrite_logical",
    "simplify_predicate",
]
