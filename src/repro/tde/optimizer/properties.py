"""Property derivation: sortedness and uniqueness (paper 4.1.2, 4.2.4).

"The TDE optimizer ... derives properties, such as column dependencies,
equivalence sets, uniqueness, sorting properties and utilizes them to
perform a series of optimizations." We derive the two properties the
planner consumes:

* ``sorted_prefix(plan)`` — the ordered column list the operator's output
  is sorted by (used to pick streaming aggregates and to range-partition
  for parallel aggregation, Lemmas 1–3 of 4.2.3);
* ``unique_sets(plan)`` — column sets known to be row-unique (used by
  join culling, which lives in ``culling.py``).
"""

from __future__ import annotations

from ...expr.ast import ColumnRef
from ..tql.plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
)
from .catalog import StorageCatalog


def sorted_prefix(plan: LogicalPlan, catalog: StorageCatalog) -> tuple[str, ...]:
    """The ordered columns the plan's output is sorted by (may be empty)."""
    if isinstance(plan, TableScan):
        return tuple(catalog.sort_keys(plan.table))
    if isinstance(plan, Select):
        return sorted_prefix(plan.child, catalog)
    if isinstance(plan, Limit):
        return sorted_prefix(plan.child, catalog)
    if isinstance(plan, Project):
        child_sorted = sorted_prefix(plan.child, catalog)
        rename: dict[str, str] = {}
        for name, expr in plan.items:
            if isinstance(expr, ColumnRef):
                rename.setdefault(expr.name, name)
        out: list[str] = []
        for key in child_sorted:
            if key in rename:
                out.append(rename[key])
            else:
                break
        return tuple(out)
    if isinstance(plan, Join):
        # Hash join preserves probe (left) order for inner joins; left
        # joins append unmatched rows out of order per batch.
        if plan.kind == "inner":
            return sorted_prefix(plan.left, catalog)
        return ()
    if isinstance(plan, Aggregate):
        # Hash aggregation does not guarantee order; the physical planner
        # re-derives this when it picks a streaming aggregate.
        return ()
    if isinstance(plan, (Order, TopN)):
        return tuple(k for k, asc in plan.keys if asc)
    if isinstance(plan, Distinct):
        return ()
    return ()


def unique_sets(plan: LogicalPlan, catalog: StorageCatalog) -> list[frozenset[str]]:
    """Column sets that uniquely identify output rows."""
    if isinstance(plan, TableScan):
        return [frozenset(key) for key in catalog.meta(plan.table).unique_keys]
    if isinstance(plan, (Select, Limit, TopN, Order)):
        return unique_sets(plan.child, catalog)
    if isinstance(plan, Project):
        passthrough = {
            expr.name: name for name, expr in plan.items if isinstance(expr, ColumnRef)
        }
        out = []
        for key in unique_sets(plan.child, catalog):
            if key <= set(passthrough):
                out.append(frozenset(passthrough[c] for c in key))
        return out
    if isinstance(plan, Aggregate):
        return [frozenset(plan.groupby)] if plan.groupby else []
    if isinstance(plan, Distinct):
        return [frozenset(plan.columns)]
    if isinstance(plan, Join):
        # left-unique x key-unique right stays unique on the left key set.
        right_unique = unique_sets(plan.right, catalog)
        right_keys = frozenset(r for _, r in plan.conditions)
        if any(key <= right_keys for key in right_unique):
            return unique_sets(plan.left, catalog)
        return []
    return []


def grouping_satisfied_by_order(
    groupby: tuple[str, ...], order: tuple[str, ...]
) -> bool:
    """Whether rows sorted by ``order`` arrive grouped by ``groupby``.

    Sorting is a sufficient (not necessary) condition for grouping (paper
    4.2.4): it suffices that the first ``len(groupby)`` sorted columns are
    a permutation of the group-by set.
    """
    if not groupby:
        return False
    if len(order) < len(groupby):
        return False
    return set(order[: len(groupby)]) == set(groupby)


def range_partition_key(
    groupby: tuple[str, ...], order: tuple[str, ...]
) -> str | None:
    """Pick the partitioning column for Lemma-3 parallel aggregation.

    "If there exists a subset of GROUP BY columns such that a permutation
    of these columns is a prefix of the sorted column list, a range
    partition is able to be delivered for removing the global aggregation"
    (paper 4.2.3). We partition on the first sorted column when it belongs
    to the group-by set — the 1-column prefix case, which already unlocks
    the experiment's behaviour; wider prefixes reduce to it because range
    partitioning any prefix splits at boundaries of its first column.
    """
    if order and order[0] in set(groupby):
        return order[0]
    return None
