"""Join culling: unused-dimension removal and fact-table culling.

Paper 4.1.2: "removal of unnecessary joins ... removal of the fact table
from a join is critical for performance of domain queries, frequently sent
by Tableau." Both rules are guarded by declared metadata
(:class:`~repro.tde.optimizer.catalog.TableMeta`,
:class:`~repro.tde.optimizer.catalog.ForeignKey`), so they only fire when
provably result-preserving:

* **Dimension removal** — an inner join to a dimension whose columns are
  never referenced above, joined on the dimension's unique key through a
  *total* foreign key (no orphans, non-NULL), is a no-op per fact row.
* **Fact culling** — a domain query (pure GROUP BY, no aggregates) whose
  keys all come from the dimension side can be answered from the dimension
  alone when the foreign key is declared *onto* (every dimension key
  occurs in the fact table).
"""

from __future__ import annotations

from ...expr.ast import columns_used
from ..tql.plan import (
    Aggregate,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
)
from . import provenance
from .catalog import StorageCatalog


def cull_joins(plan: LogicalPlan, catalog: StorageCatalog) -> LogicalPlan:
    """Apply both culling rules everywhere they are provably safe."""
    return _cull(plan, None, catalog)


def _cull(plan: LogicalPlan, needed: set[str] | None, catalog: StorageCatalog) -> LogicalPlan:
    if isinstance(plan, TableScan):
        return plan
    if isinstance(plan, Select):
        child_needed = None if needed is None else needed | columns_used(plan.predicate)
        return Select(_cull(plan.child, child_needed, catalog), plan.predicate)
    if isinstance(plan, Project):
        child_needed: set[str] = set()
        for _name, expr in plan.items:
            child_needed |= columns_used(expr)
        return Project(_cull(plan.child, child_needed, catalog), plan.items)
    if isinstance(plan, Aggregate):
        culled = _try_fact_culling(plan, catalog)
        if culled is not None:
            return culled
        child_needed = set(plan.groupby)
        for _name, agg in plan.aggs:
            if agg.arg is not None:
                child_needed |= columns_used(agg.arg)
        return Aggregate(_cull(plan.child, child_needed, catalog), plan.groupby, plan.aggs)
    if isinstance(plan, (Order, TopN)):
        child_needed = None if needed is None else needed | {k for k, _ in plan.keys}
        child = _cull(plan.child, child_needed, catalog)
        if isinstance(plan, Order):
            return Order(child, plan.keys)
        return TopN(child, plan.n, plan.keys)
    if isinstance(plan, Limit):
        return Limit(_cull(plan.child, needed, catalog), plan.n)
    if isinstance(plan, Join):
        return _cull_join(plan, needed, catalog)
    if isinstance(plan, Window):
        return Window(_cull(plan.child, None, catalog), plan.items)
    return plan


def _cull_join(join: Join, needed: set[str] | None, catalog: StorageCatalog) -> LogicalPlan:
    removed = _try_dimension_removal(join, needed, catalog)
    if removed is not None:
        return _cull(removed, needed, catalog)
    left = _cull(join.left, _side_needed(needed, [l for l, _ in join.conditions]), catalog)
    right = _cull(join.right, _side_needed(needed, [r for _, r in join.conditions]), catalog)
    return Join(join.kind, join.conditions, left, right)


def _side_needed(needed: set[str] | None, keys: list[str]) -> set[str] | None:
    if needed is None:
        return None
    return needed | set(keys)


def _try_dimension_removal(
    join: Join, needed: set[str] | None, catalog: StorageCatalog
) -> LogicalPlan | None:
    """Drop an inner join whose right side contributes nothing."""
    rule = "culling.dimension_removal"
    if needed is None or join.kind != "inner":
        if needed is not None:
            provenance.note(rule, False, f"{join.kind} join: only inner joins are removable")
        return None
    if not isinstance(join.right, TableScan):
        provenance.note(rule, False, "build side is not a base-table scan")
        return None
    right_table = join.right.table
    right_keys = tuple(r for _, r in join.conditions)
    right_out = set(catalog.schema_of(right_table)) - set(right_keys)
    if needed & right_out:
        provenance.note(
            rule,
            False,
            f"{right_table} columns {sorted(needed & right_out)} are referenced above the join",
            table=right_table,
        )
        return None
    if not catalog.meta(right_table).is_unique(right_keys):
        provenance.note(
            rule,
            False,
            f"{right_table}{list(right_keys)} is not declared unique",
            table=right_table,
        )
        return None
    fk = _find_fk(join.left, [l for l, _ in join.conditions], right_table, right_keys, catalog)
    if fk is None or not fk.total:
        provenance.note(
            rule,
            False,
            f"no total foreign key onto {right_table}{list(right_keys)}"
            if fk is None
            else f"foreign key to {right_table} admits orphans (not total)",
            table=right_table,
        )
        return None
    provenance.note(
        rule,
        True,
        f"dropped join to {right_table}: no columns needed, key unique, FK total",
        table=right_table,
    )
    return join.left


def _try_fact_culling(agg: Aggregate, catalog: StorageCatalog) -> LogicalPlan | None:
    """Answer a domain query from the dimension table alone."""
    rule = "culling.fact_culling"
    if agg.aggs:
        return None  # not a domain query; too common to note
    child = agg.child
    pre_filter = None
    if isinstance(child, Select):
        pre_filter = child.predicate
        child = child.child
    if not isinstance(child, Join) or child.kind != "inner":
        return None
    if not isinstance(child.right, TableScan) or not isinstance(child.left, TableScan):
        provenance.note(rule, False, "join sides are not both base-table scans")
        return None
    right_table = child.right.table
    right_keys = tuple(r for _, r in child.conditions)
    right_cols = set(catalog.schema_of(right_table))
    if not set(agg.groupby) <= (right_cols - set(right_keys)):
        provenance.note(
            rule,
            False,
            f"group-by columns are not all non-key columns of {right_table}",
            table=right_table,
        )
        return None
    if pre_filter is not None and not columns_used(pre_filter) <= (right_cols - set(right_keys)):
        provenance.note(
            rule, False, "filter references fact-side columns", table=right_table
        )
        return None
    if not catalog.meta(right_table).is_unique(right_keys):
        provenance.note(
            rule,
            False,
            f"{right_table}{list(right_keys)} is not declared unique",
            table=right_table,
        )
        return None
    fk = catalog.foreign_key(
        child.left.table, tuple(l for l, _ in child.conditions), right_table, right_keys
    )
    if fk is None or not fk.onto or not fk.total:
        provenance.note(
            rule,
            False,
            "foreign key is missing or not declared total+onto "
            "(every dimension key must occur in the fact table)",
            table=right_table,
        )
        return None
    provenance.note(
        rule,
        True,
        f"domain query answered from {right_table} alone (fact table "
        f"{child.left.table} culled)",
        table=right_table,
        fact=child.left.table,
    )
    base: LogicalPlan = child.right
    if pre_filter is not None:
        base = Select(base, pre_filter)
    return Aggregate(base, agg.groupby, ())


def _find_fk(left: LogicalPlan, left_keys: list[str], parent: str, parent_keys, catalog):
    """Find a declared FK from any base table in the left subtree.

    Column identity is by name: the engine's workloads keep fact FK column
    names stable through the plan, which the scan-level check enforces.
    """
    for node in left.walk():
        if isinstance(node, TableScan):
            fk = catalog.foreign_key(node.table, tuple(left_keys), parent, tuple(parent_keys))
            if fk is not None:
                return fk
    return None
