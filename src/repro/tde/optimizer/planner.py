"""Physical planning: logical plan → (possibly parallel) physical plan.

Implements the paper's bottom-up parallel plan generation (4.2.2):

1. at TableScan the optimizer decides a fraction count N ≥ 1 from metadata
   and the expression cost profile of the pipeline above;
2. flow operators (Select, Project) inherit the degree of parallelism;
3. stop-and-go operators (Aggregate, Order, TopN) close the region with an
   Exchange — except aggregates, which prefer local/global aggregation or,
   when a range partition on a sort-prefix group-by column is available,
   run fully parallel with no global phase at all (Lemmas 1–3, 4.2.3);
4. joins parallelize their left (fact) side and share a single build-side
   table across fragments (Figure 4);
5. an Exchange at the root closes any remaining parallelism.

Aggregate partition requirements are pushed down to the nearest scan
("the TableScan only gets the partition requirements from the nearest
Aggregate operator", 4.2.3).
"""

from __future__ import annotations

from ...errors import OptimizerError
from ...expr.ast import ColumnRef, columns_used, conjuncts
from ..exec.exchange import FractionTable, SharedBuild
from ..exec.kernels import AggSpec
from ..exec.physical import (
    PFilter,
    PHashAggregate,
    PHashJoin,
    PIndexedRleScan,
    PLimit,
    PProject,
    PScan,
    PSort,
    PStreamAggregate,
    PTopN,
    PhysNode,
)
from ..storage.table import Table
from ..tql.binder import bind
from ..tql.plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
)
from . import provenance
from .catalog import StorageCatalog
from .cost import expr_cost
from .decompression import choose_rle_scan
from .parallel import (
    Fragments,
    PlannerOptions,
    close_fragments,
    decide_dop,
    split_local_global,
)
from .properties import grouping_satisfied_by_order, range_partition_key, sorted_prefix
from .rules import fuse_pipelines, rewrite_logical


def plan_query(
    logical: LogicalPlan,
    catalog: StorageCatalog,
    options: PlannerOptions | None = None,
    *,
    rewrite: bool = True,
) -> PhysNode:
    """Produce an executable physical plan for a logical query."""
    options = options or PlannerOptions()
    if rewrite:
        logical = rewrite_logical(logical, catalog)
    bind(logical, catalog)  # validate before committing to a plan
    frags = _build(logical, catalog, options, needed=None, hint=0.0, partition_req=())
    plan = close_fragments(frags)
    if options.enable_pipeline_fusion:
        plan = fuse_pipelines(plan, options)
    return plan


# ---------------------------------------------------------------------- #
# Recursive construction
# ---------------------------------------------------------------------- #
def _build(
    plan: LogicalPlan,
    catalog: StorageCatalog,
    options: PlannerOptions,
    *,
    needed: set[str] | None,
    hint: float,
    partition_req: tuple[str, ...],
) -> Fragments:
    if isinstance(plan, TableScan):
        return _build_scan(plan, catalog, options, needed, hint, partition_req, None)
    if isinstance(plan, Select):
        return _build_select(plan, catalog, options, needed, hint, partition_req)
    if isinstance(plan, Project):
        return _build_project(plan, catalog, options, needed, hint, partition_req)
    if isinstance(plan, Join):
        return _build_join(plan, catalog, options, needed, hint, partition_req)
    if isinstance(plan, Aggregate):
        return _build_aggregate(plan, catalog, options, hint)
    if isinstance(plan, Distinct):
        # Normalization-independent path (used when rewrites are skipped).
        return _build_aggregate(Aggregate(plan.child, plan.columns, ()), catalog, options, hint)
    if isinstance(plan, Order):
        frags = _build(
            plan.child,
            catalog,
            options,
            needed=_extend(needed, [k for k, _ in plan.keys]),
            hint=hint,
            partition_req=(),
        )
        if frags.degree > 1 and options.enable_order_preserving_merge:
            from ..exec.exchange import PMergeSorted

            # Future work of 4.2.2: sort each fragment in parallel, then
            # merge order-preservingly — O(n log k) instead of a serial
            # O(n log n) sort above a plain Exchange.
            local_sorts = [PSort(node, list(plan.keys)) for node in frags.nodes]
            return Fragments([PMergeSorted(local_sorts, list(plan.keys))])
        return Fragments([PSort(close_fragments(frags), list(plan.keys))])
    if isinstance(plan, TopN):
        frags = _build(
            plan.child,
            catalog,
            options,
            needed=_extend(needed, [k for k, _ in plan.keys]),
            hint=hint,
            partition_req=(),
        )
        if frags.degree > 1:
            # Local/global TopN (paper 4.2.3): each fragment keeps its own
            # top n, the Exchange merges, a global TopN finishes.
            locals_ = [PTopN(node, plan.n, list(plan.keys)) for node in frags.nodes]
            merged = close_fragments(Fragments(locals_))
            return Fragments([PTopN(merged, plan.n, list(plan.keys))])
        return Fragments([PTopN(frags.nodes[0], plan.n, list(plan.keys))])
    if isinstance(plan, Limit):
        frags = _build(
            plan.child, catalog, options, needed=needed, hint=hint, partition_req=()
        )
        return Fragments([PLimit(close_fragments(frags, ordered=True), plan.n)])
    if isinstance(plan, Window):
        from ..exec.physical import PWindow

        # Window calculations need every input column (the output carries
        # them all) and are stop-and-go: close any parallelism first.
        frags = _build(
            plan.child, catalog, options, needed=None, hint=hint, partition_req=()
        )
        return Fragments([PWindow(close_fragments(frags), list(plan.items))])
    raise OptimizerError(f"cannot plan {type(plan).__name__} (rewrite first?)")


def _extend(needed: set[str] | None, extra) -> set[str] | None:
    if needed is None:
        return None
    return needed | set(extra)


def _scan_columns(table: Table, needed: set[str] | None) -> list[str] | None:
    if needed is None:
        return None
    columns = [c for c in table.column_names if c in needed]
    if not columns and table.column_names:
        # COUNT(*)-style queries need row counts even with no columns
        # referenced; keep the cheapest column as a row carrier.
        cheapest = min(table.column_names, key=lambda c: table.column(c).nbytes)
        columns = [cheapest]
    return columns


def _build_scan(
    plan: TableScan,
    catalog: StorageCatalog,
    options: PlannerOptions,
    needed: set[str] | None,
    hint: float,
    partition_req: tuple[str, ...],
    predicate,
) -> Fragments:
    storage = catalog.storage(plan.table)
    columns = _scan_columns(storage, needed)
    row_hint = hint + (expr_cost(predicate) if predicate is not None else 0.0)
    dop = decide_dop(storage.n_rows, row_hint, options)
    if dop > 1 and partition_req and options.enable_range_partition_agg:
        key = range_partition_key(partition_req, storage.sort_keys)
        if key is not None:
            scans = FractionTable.split_by_key(
                storage, key, dop, columns=columns, predicate=predicate
            )
            if scans is not None and len(scans) > 1:
                return Fragments(list(scans), range_partitioned_on=key)
    if dop > 1:
        scans = FractionTable.split_even(storage, dop, columns=columns, predicate=predicate)
        return Fragments(list(scans))
    return Fragments([PScan(storage, columns, predicate)])


def _build_select(
    plan: Select,
    catalog: StorageCatalog,
    options: PlannerOptions,
    needed: set[str] | None,
    hint: float,
    partition_req: tuple[str, ...],
) -> Fragments:
    child_needed = _extend(needed, columns_used(plan.predicate))
    if isinstance(plan.child, TableScan):
        storage = catalog.storage(plan.child.table)
        if options.enable_rle_index:
            choice = choose_rle_scan(
                storage,
                conjuncts(plan.predicate),
                selectivity_threshold=options.rle_selectivity_threshold,
            )
            if choice is not None:
                column, index_pred, residual = choice
                columns = _scan_columns(storage, child_needed)
                # The IndexTable join runs serially: range skipping trades
                # away the degree of parallelism (paper 4.3's caveat).
                node = PIndexedRleScan(storage, column, index_pred, residual, columns)
                return Fragments([node])
        return _build_scan(
            plan.child, catalog, options, child_needed, hint, partition_req, plan.predicate
        )
    frags = _build(
        plan.child,
        catalog,
        options,
        needed=child_needed,
        hint=hint + expr_cost(plan.predicate),
        partition_req=partition_req,
    )
    nodes = [PFilter(node, plan.predicate) for node in frags.nodes]
    return Fragments(nodes, frags.range_partitioned_on)


def _build_project(
    plan: Project,
    catalog: StorageCatalog,
    options: PlannerOptions,
    needed: set[str] | None,
    hint: float,
    partition_req: tuple[str, ...],
) -> Fragments:
    child_needed: set[str] = set()
    for _name, expr in plan.items:
        child_needed |= columns_used(expr)
    # Map the aggregate's partition requirement through renames.
    passthrough = {
        name: expr.name for name, expr in plan.items if isinstance(expr, ColumnRef)
    }
    child_req = tuple(passthrough[c] for c in partition_req if c in passthrough)
    item_cost = sum(expr_cost(e) for _, e in plan.items)
    frags = _build(
        plan.child,
        catalog,
        options,
        needed=child_needed,
        hint=hint + item_cost,
        partition_req=child_req,
    )
    nodes = [PProject(node, list(plan.items)) for node in frags.nodes]
    part = None
    if frags.range_partitioned_on is not None:
        inverse = {src: out for out, src in passthrough.items()}
        part = inverse.get(frags.range_partitioned_on)
    return Fragments(nodes, part)


def _build_join(
    plan: Join,
    catalog: StorageCatalog,
    options: PlannerOptions,
    needed: set[str] | None,
    hint: float,
    partition_req: tuple[str, ...],
) -> Fragments:
    left_schema = bind(plan.left, catalog)
    right_schema = bind(plan.right, catalog)
    left_keys = [l for l, _ in plan.conditions]
    right_keys = [r for _, r in plan.conditions]
    if needed is None:
        left_needed: set[str] | None = None
        right_needed: set[str] | None = None
    else:
        left_needed = (needed & set(left_schema)) | set(left_keys)
        right_needed = (needed & set(right_schema)) | set(right_keys)
    # Partition requirements survive only through probe-side columns.
    left_req = tuple(c for c in partition_req if c in left_schema)
    left = _build(
        plan.left,
        catalog,
        options,
        needed=left_needed,
        hint=hint + 2.0,
        partition_req=left_req,
    )
    # The right sub-tree forms its own independent parallel unit whose
    # result is shared between threads (paper 4.2.2).
    right = _build(
        plan.right, catalog, options, needed=right_needed, hint=0.0, partition_req=()
    )
    shared = SharedBuild(close_fragments(right))
    nodes = [
        PHashJoin(plan.kind, list(plan.conditions), node, shared) for node in left.nodes
    ]
    part = left.range_partitioned_on if plan.kind == "inner" else None
    return Fragments(nodes, part)


def _build_aggregate(
    plan: Aggregate,
    catalog: StorageCatalog,
    options: PlannerOptions,
    hint: float,
) -> Fragments:
    child_schema = bind(plan.child, catalog)
    specs, pre_items, needs_pre = _make_specs(plan, child_schema)
    child_needed = set(plan.groupby)
    for _name, agg in plan.aggs:
        if agg.arg is not None:
            child_needed |= columns_used(agg.arg)
    agg_cost = 2.5 + sum(expr_cost(a) for _, a in plan.aggs)
    frags = _build(
        plan.child,
        catalog,
        options,
        needed=child_needed,
        hint=hint + agg_cost,
        partition_req=tuple(plan.groupby),
    )
    if needs_pre:
        frags = Fragments(
            [PProject(node, pre_items) for node in frags.nodes], frags.range_partitioned_on
        )
    groupby = list(plan.groupby)
    child_order = sorted_prefix(plan.child, catalog)
    streamable = options.enable_streaming_agg and grouping_satisfied_by_order(
        tuple(groupby), child_order
    )
    rule = "parallel.aggregate_strategy"
    mode = "streaming" if streamable else "hash"
    if streamable and provenance.active():
        provenance.note(
            "parallel.streaming_agg",
            True,
            f"input already ordered on {list(child_order)[: len(groupby)]}: "
            "groups arrive contiguously, aggregate streams without a table",
        )
    if frags.degree == 1:
        provenance.note(rule, False, f"serial input: single {mode} aggregate")
        op = PStreamAggregate if streamable else PHashAggregate
        return Fragments([op(frags.nodes[0], groupby, specs)])
    if (
        options.enable_range_partition_agg
        and frags.range_partitioned_on is not None
        and frags.range_partitioned_on in set(groupby)
    ):
        # Lemma 3: every group lives in exactly one fragment — aggregate
        # each fragment completely; no Exchange, no global phase.
        provenance.note(
            rule,
            True,
            f"range partition on group-by column {frags.range_partitioned_on!r} "
            "(Lemma 3): each fragment aggregates completely, no global phase",
            degree=frags.degree,
        )
        op = PStreamAggregate if streamable else PHashAggregate
        nodes = [op(node, groupby, specs) for node in frags.nodes]
        return Fragments(nodes, frags.range_partitioned_on)
    if options.enable_local_global_agg:
        split = split_local_global(groupby, specs)
        if split is not None:
            provenance.note(
                rule,
                True,
                f"local/global split across {frags.degree} fragments: partial "
                f"{mode} aggregates merged by a global hash aggregate",
                degree=frags.degree,
            )
            local_specs, global_specs, final_items, needs_final = split
            local_op = PStreamAggregate if streamable else PHashAggregate
            locals_ = [local_op(node, groupby, local_specs) for node in frags.nodes]
            merged = close_fragments(Fragments(locals_))
            out: PhysNode = PHashAggregate(merged, groupby, global_specs)
            if needs_final:
                out = PProject(out, final_items)
            return Fragments([out])
        provenance.note(
            rule,
            False,
            "local/global split impossible (COUNT DISTINCT partials cannot "
            "be merged): closing parallelism with an Exchange",
            degree=frags.degree,
        )
    merged = close_fragments(frags)
    return Fragments([PHashAggregate(merged, groupby, specs)])


def _make_specs(plan: Aggregate, child_schema) -> tuple[list[AggSpec], list, bool]:
    """Translate AggExprs into kernel specs plus an argument projection."""
    pre_items: list[tuple[str, object]] = [(g, ColumnRef(g)) for g in plan.groupby]
    present = {g for g in plan.groupby}
    specs: list[AggSpec] = []
    needs_pre = False
    for i, (name, agg) in enumerate(plan.aggs):
        result = agg.result_type(child_schema)
        if agg.arg is None:
            specs.append(AggSpec(name, "count_star", None, result))
            continue
        if isinstance(agg.arg, ColumnRef):
            arg_name = agg.arg.name
            if arg_name not in present:
                pre_items.append((arg_name, ColumnRef(arg_name)))
                present.add(arg_name)
        else:
            arg_name = f"__arg{i}"
            pre_items.append((arg_name, agg.arg))
            present.add(arg_name)
            needs_pre = True
        specs.append(AggSpec(name, agg.func, arg_name, result))
    return specs, pre_items, needs_pre
