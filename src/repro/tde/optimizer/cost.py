"""Cost model: cardinality estimation and per-operator cost formulas.

Costs are in abstract *work units* (one unit ≈ one simple arithmetic
operation on one row). The same constants drive three consumers:

* the physical planner's operator choices (streaming vs hash aggregate,
  RLE index scan vs plain scan);
* the parallel plan generator's degree-of-parallelism decision, including
  the function cost profile ("the cost constants are obtained by empirical
  measuring", paper 4.2.2);
* the virtual-time machine (``repro.sim``) that replays physical plans on
  a simulated multicore host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...expr.ast import AggExpr, Call, CaseWhen, Cast, ColumnRef, Expr, Literal
from ...expr.functions import function_cost
from ..tql.plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
)
from .catalog import StorageCatalog

#: Per-row work-unit constants (empirically shaped, see bench_e8).
SCAN_ROW = 1.0
FILTER_ROW = 0.5
PROJECT_ROW = 0.4
JOIN_BUILD_ROW = 3.0
JOIN_PROBE_ROW = 2.0
AGG_HASH_ROW = 2.5
AGG_STREAM_ROW = 1.2
SORT_ROW_LOG = 1.4
TOPN_ROW = 1.1
EXCHANGE_ROW = 0.12
EXCHANGE_SETUP = 2_000.0
DEFAULT_SELECTIVITY = 0.25
EQ_BASE_SELECTIVITY = 0.05


def expr_cost(expr: Expr | AggExpr | None) -> float:
    """Per-row cost weight of evaluating an expression tree."""
    if expr is None:
        return 0.0
    if isinstance(expr, AggExpr):
        return 1.0 + expr_cost(expr.arg)
    total = 0.0
    for node in expr.walk():
        if isinstance(node, Call):
            total += function_cost(node.func)
            if node.func == "in":
                lst = node.args[1]
                if isinstance(lst, Literal) and isinstance(lst.value, tuple):
                    total += 0.05 * len(lst.value)
        elif isinstance(node, Cast):
            total += 1.5
        elif isinstance(node, CaseWhen):
            total += 2.0
        elif isinstance(node, (ColumnRef, Literal)):
            total += 0.1
    return total


def estimate_selectivity(predicate: Expr, schema_rows: int | None = None) -> float:
    """Crude textbook selectivity estimate for a predicate."""
    if isinstance(predicate, Call):
        if predicate.func == "and":
            return min(1.0, estimate_selectivity(predicate.args[0]) * estimate_selectivity(predicate.args[1]))
        if predicate.func == "or":
            a = estimate_selectivity(predicate.args[0])
            b = estimate_selectivity(predicate.args[1])
            return min(1.0, a + b - a * b)
        if predicate.func == "not":
            return max(0.0, 1.0 - estimate_selectivity(predicate.args[0]))
        if predicate.func == "=":
            return EQ_BASE_SELECTIVITY
        if predicate.func == "in":
            lst = predicate.args[1]
            k = len(lst.value) if isinstance(lst, Literal) and isinstance(lst.value, tuple) else 4
            return min(1.0, EQ_BASE_SELECTIVITY * max(k, 1))
        if predicate.func in ("<", "<=", ">", ">="):
            return 0.3
    return DEFAULT_SELECTIVITY


@dataclass
class CostEstimate:
    rows: int
    cost: float


def estimate_plan(plan: LogicalPlan, catalog: StorageCatalog) -> CostEstimate:
    """Estimate output cardinality and total serial work of a plan."""
    import math

    if isinstance(plan, TableScan):
        rows = catalog.row_count(plan.table)
        return CostEstimate(rows, rows * SCAN_ROW)
    if isinstance(plan, Select):
        child = estimate_plan(plan.child, catalog)
        sel = estimate_selectivity(plan.predicate)
        rows = max(1, int(child.rows * sel))
        return CostEstimate(rows, child.cost + child.rows * (FILTER_ROW + expr_cost(plan.predicate)))
    if isinstance(plan, Project):
        child = estimate_plan(plan.child, catalog)
        per_row = PROJECT_ROW + sum(expr_cost(e) for _, e in plan.items)
        return CostEstimate(child.rows, child.cost + child.rows * per_row)
    if isinstance(plan, Join):
        left = estimate_plan(plan.left, catalog)
        right = estimate_plan(plan.right, catalog)
        rows = max(left.rows, 1)  # FK joins keep probe cardinality
        cost = left.cost + right.cost + right.rows * JOIN_BUILD_ROW + left.rows * JOIN_PROBE_ROW
        return CostEstimate(rows, cost)
    if isinstance(plan, Aggregate):
        child = estimate_plan(plan.child, catalog)
        groups = max(1, min(child.rows, int(child.rows ** 0.75))) if plan.groupby else 1
        per_row = AGG_HASH_ROW + sum(expr_cost(a) for _, a in plan.aggs)
        return CostEstimate(groups, child.cost + child.rows * per_row)
    if isinstance(plan, Distinct):
        child = estimate_plan(plan.child, catalog)
        groups = max(1, int(child.rows ** 0.75))
        return CostEstimate(groups, child.cost + child.rows * AGG_HASH_ROW)
    if isinstance(plan, Order):
        child = estimate_plan(plan.child, catalog)
        n = max(child.rows, 2)
        return CostEstimate(child.rows, child.cost + n * math.log2(n) * SORT_ROW_LOG)
    if isinstance(plan, TopN):
        child = estimate_plan(plan.child, catalog)
        return CostEstimate(min(child.rows, plan.n), child.cost + child.rows * TOPN_ROW)
    if isinstance(plan, Limit):
        child = estimate_plan(plan.child, catalog)
        return CostEstimate(min(child.rows, plan.n), child.cost)
    if isinstance(plan, Window):
        child = estimate_plan(plan.child, catalog)
        n = max(child.rows, 2)
        per_item = n * math.log2(n) * SORT_ROW_LOG + n * 1.5
        return CostEstimate(child.rows, child.cost + per_item * max(len(plan.items), 1))
    raise TypeError(f"unknown plan node {type(plan).__name__}")
