"""Parallel plan generation helpers (paper 4.2).

The planner follows the paper's bottom-up scheme: TableScan decides the
degree of parallelism from metadata and the expression cost profile, flow
operators inherit it, stop-and-go operators close it with an Exchange.
This module holds the pieces the planner composes:

* :func:`decide_dop` — the degree-of-parallelism decision;
* :func:`split_local_global` — local/global aggregation rewriting
  (paper 4.2.3, Figure 5);
* :func:`close_fragments` — Exchange insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datatypes import LogicalType
from ...expr.ast import Call, ColumnRef, Expr
from ..exec.exchange import PExchange
from ..exec.kernels import AggSpec
from ..exec.physical import PhysNode


@dataclass
class PlannerOptions:
    """Knobs of the physical planner and parallelizer.

    ``min_work_per_fraction`` is in cost-model work units; a scan only
    splits when each fraction gets at least this much pipeline work, which
    is how the expression cost profile "affects the decision of the
    parallelization" (paper 4.2.2).
    """

    max_dop: int = 4
    min_work_per_fraction: float = 32768.0
    enable_parallel: bool = True
    enable_rle_index: bool = True
    enable_local_global_agg: bool = True
    enable_range_partition_agg: bool = True
    enable_streaming_agg: bool = True
    #: Paper 4.2.2 future work, now default-on (validated by E18b): sort
    #: fragments in parallel and merge order-preservingly instead of
    #: closing with Exchange + Sort.
    enable_order_preserving_merge: bool = True
    rle_selectivity_threshold: float = 0.35
    #: Collapse adjacent Filter/Project/HashAggregate chains into one
    #: PFusedPipeline per-batch pass (paper 4.1: avoid materializing
    #: intermediates between operators).
    enable_pipeline_fusion: bool = True
    #: Evaluate predicates on dictionary codes (once per dictionary
    #: entry) and per-RLE-run instead of per row inside fused pipelines.
    enable_code_space: bool = True
    #: Physical-plan cache capacity (entries) on the engine's string
    #: query path; 0 disables caching.
    plan_cache_size: int = 64

    def serial(self) -> "PlannerOptions":
        from dataclasses import replace

        return replace(self, enable_parallel=False, max_dop=1)


@dataclass
class Fragments:
    """A pipeline region: N parallel fragments plus partition provenance.

    ``range_partitioned_on`` names the output column (post-renames) whose
    values are guaranteed not to straddle fragments — the Lemma 2 property
    that lets the planner drop the global aggregation.
    """

    nodes: list[PhysNode]
    range_partitioned_on: str | None = None

    @property
    def degree(self) -> int:
        return len(self.nodes)


def decide_dop(rows: int, row_cost_hint: float, options: PlannerOptions) -> int:
    """Choose how many fractions a scan should split into."""
    from . import provenance

    if not options.enable_parallel or options.max_dop <= 1:
        provenance.note(
            "parallel.decide_dop", False, "parallelism disabled by planner options"
        )
        return 1
    work = rows * max(1.0, 1.0 + row_cost_hint)
    dop = max(1, min(options.max_dop, int(work // options.min_work_per_fraction)))
    if provenance.active():
        if dop > 1:
            detail = (
                f"split into {dop} fractions: {rows} rows x cost hint "
                f"{row_cost_hint:.2f} = {work:.0f} work units "
                f">= {options.min_work_per_fraction:.0f}/fraction"
            )
        else:
            detail = (
                f"serial scan: {work:.0f} work units under the "
                f"{options.min_work_per_fraction:.0f}/fraction threshold"
            )
        provenance.note(
            "parallel.decide_dop", dop > 1, detail, rows=rows, dop=dop
        )
    return dop


def close_fragments(frags: Fragments, *, ordered: bool = False) -> PhysNode:
    """Insert the Exchange that ends a parallel region (paper Fig. 3)."""
    if frags.degree == 1:
        return frags.nodes[0]
    return PExchange(list(frags.nodes), ordered=ordered)


def split_local_global(
    groupby: list[str], specs: list[AggSpec]
) -> tuple[list[AggSpec], list[AggSpec], list[tuple[str, Expr]], bool] | None:
    """Rewrite aggregates into local/global phases (paper 4.2.3).

    Returns ``(local_specs, global_specs, final_items, needs_final)`` or
    ``None`` when the split is impossible (COUNT DISTINCT cannot be merged
    from partial results without group-disjoint partitions).
    """
    local: list[AggSpec] = []
    global_: list[AggSpec] = []
    final: list[tuple[str, Expr]] = [(g, ColumnRef(g)) for g in groupby]
    needs_final = False
    for spec in specs:
        if spec.func == "count_distinct":
            return None
        if spec.func in ("sum", "min", "max"):
            local.append(spec)
            global_.append(AggSpec(spec.name, spec.func, spec.name, spec.result_type))
            final.append((spec.name, ColumnRef(spec.name)))
        elif spec.func in ("count", "count_star"):
            local.append(spec)
            global_.append(AggSpec(spec.name, "sum", spec.name, LogicalType.INT))
            final.append((spec.name, ColumnRef(spec.name)))
        elif spec.func == "avg":
            part_sum = f"__ls_{spec.name}"
            part_cnt = f"__lc_{spec.name}"
            local.append(AggSpec(part_sum, "sum", spec.arg, LogicalType.FLOAT))
            local.append(AggSpec(part_cnt, "count", spec.arg, LogicalType.INT))
            global_.append(AggSpec(part_sum, "sum", part_sum, LogicalType.FLOAT))
            global_.append(AggSpec(part_cnt, "sum", part_cnt, LogicalType.INT))
            final.append(
                (spec.name, Call("/", (ColumnRef(part_sum), ColumnRef(part_cnt))))
            )
            needs_final = True
        else:  # pragma: no cover - defensive
            return None
    return local, global_, final, needs_final
