"""DataEngine: the public facade of the TDE reproduction.

Usage::

    engine = DataEngine("sales")
    engine.load_pydict("Extract.orders", {"region": [...], "amount": [...]})
    result = engine.query('(aggregate (region) ((total (sum amount))) '
                          '(scan "Extract.orders"))')

The engine owns a :class:`Database`, a :class:`StorageCatalog` with the
declared constraints the optimizer uses, and the planner options that
control parallelism. ``save``/``open`` pack the whole database into a
single file (paper 4.1.1).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import StorageError
from .exec.exchange import PExchange, SharedBuild
from .exec.physical import (
    ExecContext,
    PFilter,
    PHashAggregate,
    PHashJoin,
    PIndexedRleScan,
    PLimit,
    PProject,
    PScan,
    PSingleRow,
    PSort,
    PStreamAggregate,
    PTopN,
    PhysNode,
    execute_to_table,
)
from .exec.fused import PFusedPipeline
from .optimizer.catalog import StorageCatalog
from .optimizer.parallel import PlannerOptions
from .optimizer.planner import plan_query
from .optimizer.rules import rewrite_logical
from .plancache import PlanCache, normalize_tql, options_fingerprint
from .storage.filepack import pack_database, unpack_database
from .storage.schema import Database
from .storage.table import Table
from .tql.parser import parse_tql
from .tql.plan import LogicalPlan


class DataEngine:
    """An embeddable, read-mostly columnar analytics engine."""

    def __init__(
        self,
        name: str = "tde",
        *,
        options: PlannerOptions | None = None,
        batch_size: int = 8192,
    ):
        self.database = Database(name)
        self.catalog = StorageCatalog(self.database)
        self.options = options or PlannerOptions()
        self.batch_size = batch_size
        #: Compiled-plan LRU for the string query path; keyed on
        #: (normalized TQL, catalog version, options fingerprint).
        self.plan_cache = PlanCache(self.options.plan_cache_size)

    # ------------------------------------------------------------------ #
    # Loading and metadata
    # ------------------------------------------------------------------ #
    def create_table(self, name: str, table: Table, *, replace: bool = False) -> None:
        """Register a pre-built storage table under ``schema.table``."""
        self.database.add_table(name, table, replace=replace)
        self.plan_cache.invalidate("catalog_change")

    def load_pydict(
        self,
        name: str,
        data: Mapping[str, Sequence[Any]],
        *,
        sort_keys: Sequence[str] = (),
        replace: bool = False,
        **kwargs: Any,
    ) -> Table:
        """Build a table from Python values and register it."""
        table = Table.from_pydict(data, sort_keys=sort_keys, name=name, **kwargs)
        self.create_table(name, table, replace=replace)
        return table

    def drop_table(self, name: str) -> None:
        self.database.drop_table(name)
        self.plan_cache.invalidate("catalog_change")

    def table(self, name: str) -> Table:
        return self.database.table(name)

    def has_table(self, name: str) -> bool:
        return self.database.has_table(name)

    def declare_unique(self, table: str, columns: Sequence[str]) -> None:
        """Declare a unique key, enabling join-culling rewrites."""
        self.catalog.declare_unique(table, tuple(columns))

    def declare_foreign_key(
        self,
        child: str,
        fk_columns: Sequence[str],
        parent: str,
        key_columns: Sequence[str],
        *,
        total: bool = True,
        onto: bool = False,
    ) -> None:
        """Declare a foreign key (see :class:`ForeignKey` for semantics)."""
        self.catalog.declare_foreign_key(
            child, fk_columns, parent, key_columns, total=total, onto=onto
        )

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def parse(self, tql: str) -> LogicalPlan:
        return parse_tql(tql)

    def plan(
        self, query: str | LogicalPlan, *, options: PlannerOptions | None = None
    ) -> PhysNode:
        """Compile a TQL query to a physical plan without executing it.

        String queries go through the plan cache: repeat dashboard
        queries (modulo whitespace, name quoting and literal position)
        reuse the compiled physical plan and skip rewrite/bind/optimize.
        """
        opts = options or self.options
        if isinstance(query, str) and self.plan_cache.enabled:
            key = self._plan_key(query, opts)
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached
            generation = self.plan_cache.generation()
            physical = plan_query(self.parse(query), self.catalog, opts)
            self.plan_cache.put(key, physical, generation)
            return physical
        logical = self.parse(query) if isinstance(query, str) else query
        return plan_query(logical, self.catalog, opts)

    def _plan_key(self, tql: str, opts: PlannerOptions) -> tuple:
        return (normalize_tql(tql), self.catalog.version, options_fingerprint(opts))

    def invalidate_plans(self, reason: str = "refresh") -> int:
        """Drop every cached plan (extract refresh, external DDL)."""
        return self.plan_cache.invalidate(reason)

    def query(
        self,
        query: str | LogicalPlan,
        *,
        options: PlannerOptions | None = None,
        context: ExecContext | None = None,
    ) -> Table:
        """Compile, optimize, and execute a query; return the result table."""
        physical = self.plan(query, options=options)
        ctx = context or ExecContext(batch_size=self.batch_size)
        return execute_to_table(physical, ctx)

    def query_naive(self, query: str | LogicalPlan) -> Table:
        """Execute with every optimization disabled (testing baseline).

        The logical plan is interpreted operator-by-operator with no
        rewrites, no parallelism, and no encoding-aware scans — the
        reference semantics the optimized paths must match.
        """
        logical = self.parse(query) if isinstance(query, str) else query
        naive_options = PlannerOptions(
            max_dop=1,
            enable_parallel=False,
            enable_rle_index=False,
            enable_local_global_agg=False,
            enable_range_partition_agg=False,
            enable_streaming_agg=False,
            enable_pipeline_fusion=False,
            enable_code_space=False,
            plan_cache_size=0,
        )
        physical = plan_query(logical, self.catalog, naive_options, rewrite=False)
        return execute_to_table(physical, ExecContext(batch_size=self.batch_size, parallel=False))

    def explain(
        self,
        query: str | LogicalPlan,
        *,
        analyze: bool = False,
        options: PlannerOptions | None = None,
    ) -> str:
        """EXPLAIN: the physical plan plus optimizer provenance.

        Returns an :class:`~repro.obs.explain.ExplainResult` — a ``str``
        (one operator per line, pre-order numbered, with estimated rows
        and the rewrite/culling/parallelization decisions that shaped the
        plan) that also carries the structured form via ``.to_dict()``.
        With ``analyze=True`` the plan is executed once and every
        operator is annotated with actual rows, batches and inclusive
        wall time.
        """
        from ..obs.explain import explain_query

        return explain_query(self, query, analyze=analyze, options=options)

    def rewrite(self, query: str | LogicalPlan) -> LogicalPlan:
        """Expose the logical rewrite pipeline (for tests and tools)."""
        logical = self.parse(query) if isinstance(query, str) else query
        return rewrite_logical(logical, self.catalog)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Pack the whole database into a single file."""
        pack_database(self.database, path)

    @classmethod
    def open(cls, path: str | Path, *, options: PlannerOptions | None = None) -> "DataEngine":
        """Load an engine from a packed single-file database."""
        db = unpack_database(path)
        engine = cls(db.name, options=options)
        engine.database = db
        engine.catalog = StorageCatalog(db)
        return engine


def render_plan(node: PhysNode, indent: int = 0) -> str:
    """Render a physical operator tree, one line per operator."""
    pad = "  " * indent
    label = _node_label(node)
    lines = [f"{pad}{label}"]
    for child in node.children():
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)


def _node_label(node: PhysNode) -> str:
    if isinstance(node, PScan):
        stop = node.table.n_rows if node.stop is None else node.stop
        pred = " filtered" if node.predicate is not None else ""
        return f"Scan[{node.start}:{stop}]{pred} {node.table.name or ''}".rstrip()
    if isinstance(node, PFusedPipeline):
        ops = "+".join(node.fused_ops)
        if node.table is not None:
            stop = node.table.n_rows if node.stop is None else node.stop
            where = f"[{node.start}:{stop}] {node.table.name or ''}".rstrip()
            return f"FusedPipeline({ops}) {where}".rstrip()
        return f"FusedPipeline({ops})"
    if isinstance(node, PIndexedRleScan):
        return f"IndexedRleScan({node.column}) {node.table.name or ''}".rstrip()
    if isinstance(node, PFilter):
        return "Filter"
    if isinstance(node, PProject):
        return f"Project({', '.join(n for n, _ in node.items)})"
    if isinstance(node, PHashJoin):
        conds = ", ".join(f"{l}={r}" for l, r in node.conditions)
        return f"HashJoin[{node.kind}]({conds})"
    if isinstance(node, PHashAggregate):
        return f"HashAggregate(by {', '.join(node.groupby) or '<none>'})"
    if isinstance(node, PStreamAggregate):
        return f"StreamAggregate(by {', '.join(node.groupby) or '<none>'})"
    if isinstance(node, PSort):
        return f"Sort({', '.join(k for k, _ in node.keys)})"
    if type(node).__name__ == "PWindow":
        return f"Window({', '.join(i.alias for i in node.items)})"
    if type(node).__name__ == "PMergeSorted":
        return f"MergeSorted(degree={node.degree})"
    if isinstance(node, PTopN):
        return f"TopN({node.n})"
    if isinstance(node, PLimit):
        return f"Limit({node.n})"
    if isinstance(node, PExchange):
        return f"Exchange(degree={node.degree})"
    if isinstance(node, SharedBuild):
        return "SharedTable"
    if isinstance(node, PSingleRow):
        return "SingleRow"
    return type(node).__name__
