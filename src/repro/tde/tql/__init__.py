"""TQL — the TDE's logical-tree query language (paper 4.1.2).

"The TDE uses a logical tree style language called Tableau Query Language
(TQL). It supports logical operators present in most databases, such as
TableScan, Select, Project, Join, Aggregate, Order, and TopN."

This package provides the plan node classes (``plan``), a text parser and
printer (``parser``), and the binder that resolves names and checks types
(``binder``).
"""

from .plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
)
from .parser import parse_tql, to_tql
from .binder import bind, plan_schema, Catalog

__all__ = [
    "LogicalPlan",
    "TableScan",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "Order",
    "TopN",
    "Limit",
    "Distinct",
    "parse_tql",
    "to_tql",
    "bind",
    "plan_schema",
    "Catalog",
]
