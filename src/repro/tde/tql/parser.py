"""TQL text ↔ logical plan.

Syntax (s-expressions; expressions use ``repro.expr.sexpr``):

    (scan "Extract.flights")
    (select <expr> <plan>)
    (project ((name <expr>) ...) <plan>)
    (join inner ((lcol rcol) ...) <left-plan> <right-plan>)
    (aggregate (g1 g2 ...) ((alias <agg-expr>) ...) <plan>)
    (order ((col asc|desc) ...) <plan>)
    (topn N ((col asc|desc) ...) <plan>)
    (limit N <plan>)
    (distinct (c1 c2 ...) <plan>)
"""

from __future__ import annotations

from ...errors import TqlParseError
from ...expr.sexpr import _String, _Symbol, build_expr, read_forms, to_sexpr
from .plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
    WindowItem,
)


def parse_tql(text: str) -> LogicalPlan:
    """Parse TQL text into a logical plan."""
    forms = read_forms(text)
    if len(forms) != 1:
        raise TqlParseError(f"expected one plan, found {len(forms)} forms")
    return _build_plan(forms[0])


def _name(form) -> str:
    if isinstance(form, (_Symbol, _String)):
        return str(form)
    raise TqlParseError(f"expected a name, got {form!r}")


def _build_plan(form) -> LogicalPlan:
    if not isinstance(form, list) or not form or not isinstance(form[0], _Symbol):
        raise TqlParseError(f"expected a plan form, got {form!r}")
    op = str(form[0])
    rest = form[1:]
    if op == "scan":
        if len(rest) != 1:
            raise TqlParseError("(scan \"schema.table\")")
        return TableScan(_name(rest[0]))
    if op == "select":
        if len(rest) != 2:
            raise TqlParseError("(select <expr> <plan>)")
        return Select(_build_plan(rest[1]), build_expr(rest[0]))
    if op == "project":
        if len(rest) != 2 or not isinstance(rest[0], list):
            raise TqlParseError("(project ((name expr) ...) <plan>)")
        items = []
        for pair in rest[0]:
            if not isinstance(pair, list) or len(pair) != 2:
                raise TqlParseError(f"bad projection item {pair!r}")
            items.append((_name(pair[0]), build_expr(pair[1])))
        return Project(_build_plan(rest[1]), items)
    if op == "join":
        if len(rest) != 4 or not isinstance(rest[1], list):
            raise TqlParseError("(join kind ((l r) ...) <left> <right>)")
        kind = _name(rest[0])
        if kind not in ("inner", "left"):
            raise TqlParseError(f"unsupported join kind {kind!r}")
        conds = []
        for pair in rest[1]:
            if not isinstance(pair, list) or len(pair) != 2:
                raise TqlParseError(f"bad join condition {pair!r}")
            conds.append((_name(pair[0]), _name(pair[1])))
        return Join(kind, conds, _build_plan(rest[2]), _build_plan(rest[3]))
    if op == "aggregate":
        if len(rest) != 3 or not isinstance(rest[0], list) or not isinstance(rest[1], list):
            raise TqlParseError("(aggregate (keys...) ((alias agg) ...) <plan>)")
        groupby = [_name(g) for g in rest[0]]
        aggs = []
        for pair in rest[1]:
            if not isinstance(pair, list) or len(pair) != 2:
                raise TqlParseError(f"bad aggregate item {pair!r}")
            agg = build_expr(pair[1], allow_agg=True)
            aggs.append((_name(pair[0]), agg))
        return Aggregate(_build_plan(rest[2]), groupby, aggs)
    if op in ("order", "topn"):
        return _build_ordered(op, rest)
    if op == "limit":
        if len(rest) != 2 or not isinstance(rest[0], int):
            raise TqlParseError("(limit N <plan>)")
        return Limit(_build_plan(rest[1]), rest[0])
    if op == "distinct":
        if len(rest) != 2 or not isinstance(rest[0], list):
            raise TqlParseError("(distinct (cols...) <plan>)")
        return Distinct(_build_plan(rest[1]), [_name(c) for c in rest[0]])
    if op == "window":
        if len(rest) != 2 or not isinstance(rest[0], list):
            raise TqlParseError("(window ((alias func ...) ...) <plan>)")
        items = [_build_window_item(form) for form in rest[0]]
        return Window(_build_plan(rest[1]), items)
    raise TqlParseError(f"unknown plan operator {op!r}")


def _build_window_item(form) -> WindowItem:
    if not isinstance(form, list) or len(form) < 2:
        raise TqlParseError(f"bad window item {form!r}")
    alias = _name(form[0])
    func = _name(form[1])
    if func not in WindowItem.SUPPORTED:
        raise TqlParseError(f"unknown window function {func!r}")
    arg = None
    partition: list[str] = []
    order: list[tuple[str, bool]] = []
    for clause in form[2:]:
        head = (
            str(clause[0])
            if isinstance(clause, list) and clause and not isinstance(clause[0], list)
            else None
        )
        if head == "partition":
            partition = [_name(c) for c in clause[1:]]
        elif head == "order":
            for pair in clause[1:]:
                if not isinstance(pair, list) or len(pair) != 2:
                    raise TqlParseError(f"bad window order key {pair!r}")
                direction = _name(pair[1])
                if direction not in ("asc", "desc"):
                    raise TqlParseError(f"order direction must be asc|desc, got {direction!r}")
                order.append((_name(pair[0]), direction == "asc"))
        else:
            if arg is not None:
                raise TqlParseError("window item has more than one argument expression")
            arg = build_expr(clause)
    if func in WindowItem.NEEDS_ARG and arg is None:
        raise TqlParseError(f"window function {func} requires an argument")
    if func not in WindowItem.NEEDS_ARG and arg is not None:
        raise TqlParseError(f"window function {func} takes no argument")
    if func in WindowItem.NEEDS_ORDER and not order:
        raise TqlParseError(f"window function {func} requires an (order ...) clause")
    return WindowItem(alias, func, arg, partition, order)


def _build_ordered(op: str, rest) -> LogicalPlan:
    if op == "order":
        if len(rest) != 2 or not isinstance(rest[0], list):
            raise TqlParseError("(order ((col dir) ...) <plan>)")
        keys_form, child_form = rest[0], rest[1]
    else:
        if len(rest) != 3 or not isinstance(rest[0], int) or not isinstance(rest[1], list):
            raise TqlParseError("(topn N ((col dir) ...) <plan>)")
        keys_form, child_form = rest[1], rest[2]
    keys = []
    for pair in keys_form:
        if not isinstance(pair, list) or len(pair) != 2:
            raise TqlParseError(f"bad order key {pair!r}")
        direction = _name(pair[1])
        if direction not in ("asc", "desc"):
            raise TqlParseError(f"order direction must be asc|desc, got {direction!r}")
        keys.append((_name(pair[0]), direction == "asc"))
    child = _build_plan(child_form)
    return Order(child, keys) if op == "order" else TopN(child, rest[0], keys)


# ---------------------------------------------------------------------- #
# Printing
# ---------------------------------------------------------------------- #
def to_tql(plan: LogicalPlan) -> str:
    """Render a logical plan to canonical TQL text (round-trips)."""
    if isinstance(plan, TableScan):
        return f'(scan "{plan.table}")'
    if isinstance(plan, Select):
        return f"(select {to_sexpr(plan.predicate)} {to_tql(plan.child)})"
    if isinstance(plan, Project):
        items = " ".join(f"({n} {to_sexpr(e)})" for n, e in plan.items)
        return f"(project ({items}) {to_tql(plan.child)})"
    if isinstance(plan, Join):
        conds = " ".join(f"({l} {r})" for l, r in plan.conditions)
        return f"(join {plan.kind} ({conds}) {to_tql(plan.left)} {to_tql(plan.right)})"
    if isinstance(plan, Aggregate):
        groups = " ".join(plan.groupby)
        aggs = " ".join(f"({n} {to_sexpr(a)})" for n, a in plan.aggs)
        return f"(aggregate ({groups}) ({aggs}) {to_tql(plan.child)})"
    if isinstance(plan, Order):
        keys = " ".join(f"({k} {'asc' if asc else 'desc'})" for k, asc in plan.keys)
        return f"(order ({keys}) {to_tql(plan.child)})"
    if isinstance(plan, TopN):
        keys = " ".join(f"({k} {'asc' if asc else 'desc'})" for k, asc in plan.keys)
        return f"(topn {plan.n} ({keys}) {to_tql(plan.child)})"
    if isinstance(plan, Limit):
        return f"(limit {plan.n} {to_tql(plan.child)})"
    if isinstance(plan, Distinct):
        return f"(distinct ({' '.join(plan.columns)}) {to_tql(plan.child)})"
    if isinstance(plan, Window):
        items = " ".join(_window_item_text(item) for item in plan.items)
        return f"(window ({items}) {to_tql(plan.child)})"
    raise TqlParseError(f"cannot print plan node {type(plan).__name__}")


def _window_item_text(item) -> str:
    parts = [item.alias, item.func]
    if item.arg is not None:
        parts.append(to_sexpr(item.arg))
    if item.partition_by:
        parts.append(f"(partition {' '.join(item.partition_by)})")
    if item.order_by:
        keys = " ".join(f"({k} {'asc' if asc else 'desc'})" for k, asc in item.order_by)
        parts.append(f"(order {keys})")
    return f"({' '.join(parts)})"
