"""Name resolution and semantic analysis for logical plans.

The binder walks a plan bottom-up, computing each operator's output schema
and type-checking every embedded expression. It is deliberately separate
from parsing so that programmatically built plans get the same checks.
"""

from __future__ import annotations

from typing import Mapping, Protocol

from ...datatypes import LogicalType, promote
from ...errors import BindError
from ...expr.ast import infer_type
from .plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
    Window,
    WindowItem,
)

Schema = dict[str, LogicalType]


class Catalog(Protocol):
    """Anything that can resolve table names to schemas."""

    def schema_of(self, table: str) -> Schema:  # pragma: no cover - protocol
        ...


class DictCatalog:
    """A catalog over a plain ``{table_name: schema}`` mapping."""

    def __init__(self, schemas: Mapping[str, Schema]):
        self._schemas = dict(schemas)

    def schema_of(self, table: str) -> Schema:
        if table not in self._schemas:
            raise BindError(f"unknown table {table!r}")
        return dict(self._schemas[table])


def plan_schema(plan: LogicalPlan, catalog: Catalog) -> Schema:
    """Compute the output schema of ``plan`` (validating as it goes)."""
    return bind(plan, catalog)


def bind(plan: LogicalPlan, catalog: Catalog) -> Schema:
    """Validate ``plan`` against ``catalog`` and return its output schema.

    Raises :class:`BindError` (or a subclass) on any unresolved name,
    ill-typed expression, or malformed operator.
    """
    if isinstance(plan, TableScan):
        return catalog.schema_of(plan.table)
    if isinstance(plan, Select):
        child = bind(plan.child, catalog)
        ptype = infer_type(plan.predicate, child)
        if ptype is not LogicalType.BOOL:
            raise BindError(f"select predicate has type {ptype.name}, want BOOL")
        return child
    if isinstance(plan, Project):
        child = bind(plan.child, catalog)
        out: Schema = {}
        for name, expr in plan.items:
            if name in out:
                raise BindError(f"duplicate projection name {name!r}")
            out[name] = infer_type(expr, child)
        return out
    if isinstance(plan, Join):
        left = bind(plan.left, catalog)
        right = bind(plan.right, catalog)
        if not plan.conditions:
            raise BindError("join requires at least one equi-condition")
        right_keys = {r for _, r in plan.conditions}
        for lcol, rcol in plan.conditions:
            if lcol not in left:
                raise BindError(f"join key {lcol!r} not in left input")
            if rcol not in right:
                raise BindError(f"join key {rcol!r} not in right input")
            if left[lcol] != right[rcol]:
                promote(left[lcol], right[rcol])  # raises when incomparable
        out = dict(left)
        for name, ltype in right.items():
            if name in right_keys:
                continue  # right join keys are redundant with the left's
            if name in out:
                raise BindError(f"join output column collision on {name!r}")
            out[name] = ltype
        return out
    if isinstance(plan, Aggregate):
        child = bind(plan.child, catalog)
        out = {}
        for key in plan.groupby:
            if key not in child:
                raise BindError(f"group-by column {key!r} not in input")
            out[key] = child[key]
        for name, agg in plan.aggs:
            if name in out:
                raise BindError(f"duplicate aggregate output name {name!r}")
            out[name] = agg.result_type(child)
        return out
    if isinstance(plan, (Order, TopN)):
        child = bind(plan.child, catalog)
        if isinstance(plan, TopN) and plan.n < 0:
            raise BindError("topn requires n >= 0")
        if isinstance(plan, TopN) and not plan.keys:
            raise BindError("topn requires at least one order key")
        for key, _asc in plan.keys:
            if key not in child:
                raise BindError(f"order key {key!r} not in input")
        return child
    if isinstance(plan, Limit):
        if plan.n < 0:
            raise BindError("limit requires n >= 0")
        return bind(plan.child, catalog)
    if isinstance(plan, Window):
        child = bind(plan.child, catalog)
        out = dict(child)
        for item in plan.items:
            if item.alias in out:
                raise BindError(f"window alias {item.alias!r} collides with a column")
            for col in item.partition_by:
                if col not in child:
                    raise BindError(f"window partition column {col!r} not in input")
            for col, _asc in item.order_by:
                if col not in child:
                    raise BindError(f"window order column {col!r} not in input")
            out[item.alias] = _window_type(item, child)
        return out
    if isinstance(plan, Distinct):
        child = bind(plan.child, catalog)
        for col in plan.columns:
            if col not in child:
                raise BindError(f"distinct column {col!r} not in input")
        if not plan.columns:
            raise BindError("distinct requires at least one column")
        return {c: child[c] for c in plan.columns}
    raise BindError(f"unknown plan node {type(plan).__name__}")


def _window_type(item: WindowItem, child: Schema) -> LogicalType:
    if item.func in ("row_number", "rank"):
        return LogicalType.INT
    arg_type = infer_type(item.arg, child)
    if item.func in ("running_avg", "share"):
        if not arg_type.is_numeric:
            raise BindError(f"window {item.func} over {arg_type.name}")
        return LogicalType.FLOAT
    if item.func in ("running_sum", "window_sum"):
        if not arg_type.is_numeric:
            raise BindError(f"window {item.func} over {arg_type.name}")
        return arg_type
    return arg_type  # window_max / window_min preserve the type
