"""Logical plan nodes.

Plans are immutable trees of frozen dataclasses; rewrites build new trees.
Structural equality and hashing enable common-subexpression elimination and
the batch processor's duplicate-query detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ...expr.ast import AggExpr, Expr


class LogicalPlan:
    """Base class for logical operators."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def walk(self) -> Iterator["LogicalPlan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def is_streaming(self) -> bool:
        """Streaming operators emit rows while consuming (paper 4.1.3)."""
        return False


@dataclass(frozen=True)
class TableScan(LogicalPlan):
    """Scan a stored table by qualified name (``schema.table``)."""

    table: str

    def is_streaming(self) -> bool:
        return True


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Row filter. The paper calls the operator Select; SQL says WHERE."""

    child: LogicalPlan
    predicate: Expr

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def is_streaming(self) -> bool:
        return True


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Compute named output columns from input columns."""

    child: LogicalPlan
    items: tuple[tuple[str, Expr], ...]

    def __init__(self, child: LogicalPlan, items):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "items", tuple((n, e) for n, e in items))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def is_streaming(self) -> bool:
        return True


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Equi-join. ``conditions`` pairs (left_column, right_column).

    The TDE represents multi-way joins as left-deep trees with the fact
    table leftmost (paper 4.2.2); the executor builds a hash table on the
    right input and probes with the left.
    """

    kind: str  # "inner" | "left"
    conditions: tuple[tuple[str, str], ...]
    left: LogicalPlan
    right: LogicalPlan

    def __init__(self, kind, conditions, left, right):
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "conditions", tuple((l, r) for l, r in conditions))
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Group by child columns; compute aggregate expressions.

    ``groupby`` names child columns (computed keys are pre-projected by the
    compiler). ``aggs`` maps output names to :class:`AggExpr`.
    """

    child: LogicalPlan
    groupby: tuple[str, ...]
    aggs: tuple[tuple[str, AggExpr], ...]

    def __init__(self, child, groupby, aggs):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "groupby", tuple(groupby))
        object.__setattr__(self, "aggs", tuple((n, a) for n, a in aggs))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Order(LogicalPlan):
    """Total order by ``[(column, ascending), ...]``; NULLs first."""

    child: LogicalPlan
    keys: tuple[tuple[str, bool], ...]

    def __init__(self, child, keys):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple((k, bool(a)) for k, a in keys))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class TopN(LogicalPlan):
    """First ``n`` rows under ``keys`` ordering (used by top-n filters)."""

    child: LogicalPlan
    n: int
    keys: tuple[tuple[str, bool], ...]

    def __init__(self, child, n, keys):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "keys", tuple((k, bool(a)) for k, a in keys))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """First ``n`` rows in input order."""

    child: LogicalPlan
    n: int

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def is_streaming(self) -> bool:
        return True


@dataclass(frozen=True)
class WindowItem:
    """One window/table calculation.

    Supported functions (the "window and statistical functions" of the
    paper's §1): ``row_number``, ``rank``, ``running_sum``,
    ``running_avg``, ``window_sum``, ``window_max``, ``window_min``,
    ``share`` (percent of partition total).
    """

    alias: str
    func: str
    arg: Expr | None
    partition_by: tuple[str, ...]
    order_by: tuple[tuple[str, bool], ...]

    SUPPORTED = (
        "row_number",
        "rank",
        "running_sum",
        "running_avg",
        "window_sum",
        "window_max",
        "window_min",
        "share",
    )
    NEEDS_ARG = frozenset(
        {"running_sum", "running_avg", "window_sum", "window_max", "window_min", "share"}
    )
    NEEDS_ORDER = frozenset({"row_number", "rank", "running_sum", "running_avg"})

    def __init__(self, alias, func, arg, partition_by=(), order_by=()):
        object.__setattr__(self, "alias", alias)
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "partition_by", tuple(partition_by))
        object.__setattr__(self, "order_by", tuple((k, bool(a)) for k, a in order_by))


@dataclass(frozen=True)
class Window(LogicalPlan):
    """Window calculations over partitions (stop-and-go).

    The output contains every input column plus one column per item; rows
    come out sorted by (partition, order) of the *first* item — window
    evaluation imposes that physical order, like a Tableau table calc
    addressing.
    """

    child: LogicalPlan
    items: tuple[WindowItem, ...]

    def __init__(self, child, items):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "items", tuple(items))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Distinct rows over the given columns.

    Front-end sugar: the compiler rewrites it to an Aggregate with no
    aggregate expressions ("expressing SELECT DISTINCT as a GROUP BY
    query", paper 4.1.2).
    """

    child: LogicalPlan
    columns: tuple[str, ...]

    def __init__(self, child, columns):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)


def replace_children(plan: LogicalPlan, new_children: tuple[LogicalPlan, ...]) -> LogicalPlan:
    """Rebuild ``plan`` with different children (rewrite helper)."""
    if isinstance(plan, TableScan):
        return plan
    if isinstance(plan, Select):
        return Select(new_children[0], plan.predicate)
    if isinstance(plan, Project):
        return Project(new_children[0], plan.items)
    if isinstance(plan, Join):
        return Join(plan.kind, plan.conditions, new_children[0], new_children[1])
    if isinstance(plan, Aggregate):
        return Aggregate(new_children[0], plan.groupby, plan.aggs)
    if isinstance(plan, Order):
        return Order(new_children[0], plan.keys)
    if isinstance(plan, TopN):
        return TopN(new_children[0], plan.n, plan.keys)
    if isinstance(plan, Limit):
        return Limit(new_children[0], plan.n)
    if isinstance(plan, Distinct):
        return Distinct(new_children[0], plan.columns)
    if isinstance(plan, Window):
        return Window(new_children[0], plan.items)
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def transform_up(plan: LogicalPlan, fn) -> LogicalPlan:
    """Bottom-up rewrite: apply ``fn`` to each node after its children."""
    kids = plan.children()
    if kids:
        new_kids = tuple(transform_up(k, fn) for k in kids)
        if new_kids != kids:
            plan = replace_children(plan, new_kids)
    return fn(plan)
