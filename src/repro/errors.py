"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Subsystems raise the more
specific subclasses below; each carries a human-readable message and, where
useful, structured context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TqlError(ReproError):
    """Base class for errors in the TQL front end (lexing/parsing/binding)."""


class TqlParseError(TqlError):
    """Raised when TQL text cannot be tokenized or parsed.

    Attributes:
        position: character offset in the source text, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message if position is None else f"{message} (at offset {position})")
        self.position = position


class BindError(TqlError):
    """Raised when names cannot be resolved or expression types are invalid."""


class TypeMismatchError(BindError):
    """Raised when an expression combines incompatible logical types."""


class StorageError(ReproError):
    """Raised by the TDE storage layer (missing objects, bad files, ...)."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class OptimizerError(ReproError):
    """Raised when the optimizer produces or receives an invalid plan."""


class SqlError(ReproError):
    """Base class for SQL front-end errors of the simulated databases."""


class SqlParseError(SqlError):
    """Raised when SQL text cannot be parsed by the simulated servers."""


class CapabilityError(ReproError):
    """Raised when a query requires a capability the data source lacks.

    The query compiler uses this to decide which operations must be applied
    locally in the post-processing stage (paper section 3.1).
    """

    def __init__(self, message: str, capability: str | None = None):
        super().__init__(message)
        self.capability = capability


class SourceError(ReproError):
    """Raised by connectors when a data source misbehaves or disappears."""


class TransientSourceError(SourceError):
    """A source failure that is worth retrying (timeout, blip, dead member).

    The executor's retry/backoff machinery retries these; permanent
    :class:`SourceError` subclasses (bad SQL, missing table) are not
    retried because a retry cannot change the outcome.
    """


class SourceTimeoutError(TransientSourceError):
    """Raised when a connector operation exceeds its configured timeout."""

    def __init__(self, message: str, timeout_s: float | None = None):
        super().__init__(message)
        self.timeout_s = timeout_s


class SourceUnavailableError(TransientSourceError):
    """Raised when a data source is (temporarily) unreachable or down."""


class ConnectionDiedError(TransientSourceError):
    """Raised when a pooled connection dies mid-flight (member death)."""


class CircuitOpenError(SourceError):
    """Raised fast when a circuit breaker is open for the data source.

    Deliberately *not* transient: retrying against an open breaker would
    defeat its purpose. Callers degrade (stale serve / per-zone error)
    instead, and the breaker lets probes through once it is half-open.
    """

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ConnectionLimitError(SourceError):
    """Raised when a simulated server rejects a connection (limit reached)."""


class QueryCancelledError(ExecutionError):
    """Raised when a query is cancelled (connection closed mid-flight)."""


class CacheError(ReproError):
    """Raised by the caching layer (corrupt persisted cache, bad key, ...)."""


class ServerError(ReproError):
    """Raised by Tableau Server / Data Server components."""


class PublishError(ServerError):
    """Raised when publishing a workbook or data source fails."""


class PermissionError_(ServerError):
    """Raised when a user filter or permission check denies access.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class WorkloadError(ReproError):
    """Raised by workload generators for invalid parameter combinations."""
