"""A circuit breaker for data-source connections.

Repeated transient failures against one source mean more retries can
only add load and latency; the breaker converts them into fast, cheap
rejections (:class:`~repro.errors.CircuitOpenError`) that the pipeline
turns into stale serves or per-zone errors instead of whole-dashboard
failures.

States follow the classic machine:

* **closed** — calls flow; ``failure_threshold`` consecutive failures
  trip it open.
* **open** — calls are rejected without touching the source until
  ``recovery_s`` has elapsed on the breaker's clock.
* **half-open** — up to ``half_open_max`` probe calls are admitted;
  a success closes the breaker, a failure re-opens it (and restarts the
  recovery window).

Thread-safe; every transition is emitted as a ``breaker.*`` decision
event with the reason, so recordings show why requests were rejected.
"""

from __future__ import annotations

import threading

from .. import obs
from ..errors import CircuitOpenError
from .clock import SYSTEM_CLOCK, Clock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker over an injectable clock."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        half_open_max: int = 1,
        clock: Clock | None = None,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_max = half_open_max
        self.clock = clock or SYSTEM_CLOCK
        self.name = name
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._lock = threading.Lock()
        self.trips = 0
        self.rejections = 0
        #: TraceContext of the request whose failure tripped the breaker
        #: (None while tracing is off). Rejected requests link to it:
        #: their fast-fail latency was inherited from that trace's outage.
        self._opened_by = None

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == OPEN
            and self.clock.monotonic() - self._opened_at >= self.recovery_s
        ):
            self._state = HALF_OPEN
            self._half_open_inflight = 0
            if obs.events_enabled():
                obs.event(
                    "breaker.half_open",
                    "probing",
                    f"recovery window of {self.recovery_s:.1f}s elapsed: "
                    f"admitting up to {self.half_open_max} probe call(s)",
                    breaker=self.name,
                )

    # ------------------------------------------------------------------ #
    def admit(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when rejected."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max:
                    self._half_open_inflight += 1
                    return
                self.rejections += 1
                raise CircuitOpenError(
                    f"circuit {self.name or 'breaker'} is half-open and its "
                    "probe slots are taken"
                )
            self.rejections += 1
            remaining = self.recovery_s - (self.clock.monotonic() - self._opened_at)
            if obs.enabled():
                span = obs.current_span()
                if span is not None and span.trace_id:
                    span.add_link(
                        "breaker.opened_by", self._opened_by, breaker=self.name
                    )
            obs.counter("breaker.rejections").inc()
            if obs.events_enabled():
                obs.event(
                    "breaker.rejected",
                    "rejected",
                    f"circuit open: failing fast for another {remaining:.2f}s "
                    "instead of loading a failing source",
                    breaker=self.name,
                )
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'} is open "
                f"(retry in {max(remaining, 0.0):.2f}s)",
                retry_after_s=max(remaining, 0.0),
            )

    def record_success(self) -> None:
        with self._lock:
            was = self._state
            self._failures = 0
            if was == HALF_OPEN:
                self._half_open_inflight = 0
                self._state = CLOSED
                if obs.events_enabled():
                    obs.event(
                        "breaker.closed",
                        "recovered",
                        "half-open probe succeeded: source is healthy again",
                        breaker=self.name,
                    )
            elif was == OPEN:
                # A success while open can only come from a call admitted
                # before the trip; it does not prove recovery.
                return

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                self._trip("half-open probe failed: source is still unhealthy")
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip(
                    f"{self._failures} consecutive failures reached the "
                    f"threshold of {self.failure_threshold}"
                )

    def _trip(self, reason: str) -> None:
        # Caller holds the lock.
        self._state = OPEN
        self._opened_by = obs.current_trace_context() if obs.enabled() else None
        self._opened_at = self.clock.monotonic()
        self._half_open_inflight = 0
        self._failures = 0
        self.trips += 1
        obs.counter("breaker.trips").inc()
        if obs.events_enabled():
            obs.event(
                "breaker.open",
                "tripped",
                f"{reason}; rejecting calls for {self.recovery_s:.1f}s",
                breaker=self.name,
            )

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "rejections": self.rejections,
            }
