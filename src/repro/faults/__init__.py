"""repro.faults — deterministic fault injection and robustness machinery.

The paper's response-time features (intelligent caching 3.2, query fusion
3.3, connection pooling 3.5) assume data sources that never fail
mid-flight. This package supplies the adverse-conditions half the system
needs at production scale, in two parts:

* **Injection** — :class:`FaultPlan` (seed-driven or scripted schedules
  of errors, latency spikes, timeouts, connection deaths),
  :class:`FaultyDataSource` (wraps any data source and realizes the
  plan), and :class:`VirtualTimeClock` (so every schedule — including
  each backoff wait — replays byte-identically in microseconds).
* **Robustness** — :class:`RetryPolicy` / :func:`call_with_retry`
  (exponential backoff with deterministic jitter, used by the executor)
  and :class:`CircuitBreaker` (wired into the connection pool). The
  graceful-degradation side (stale serves, per-zone errors) lives in
  :mod:`repro.core.pipeline` and :mod:`repro.dashboard.render`.

Every retry, trip and injected fault is emitted into the
:mod:`repro.obs` decision-event ring, so a performance recording of a
degraded run explains *why* each request was slow, stale or failed.
"""

from __future__ import annotations

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .clock import SYSTEM_CLOCK, Clock, SystemClock, VirtualTimeClock
from .injector import FaultyDataSource
from .plan import CLEAN, FaultDecision, FaultPlan, FaultRule, ScheduledFault
from .retry import NO_RETRY, RetryPolicy, call_with_retry

__all__ = [
    "CLEAN",
    "CLOSED",
    "Clock",
    "CircuitBreaker",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "FaultyDataSource",
    "HALF_OPEN",
    "NO_RETRY",
    "OPEN",
    "RetryPolicy",
    "SYSTEM_CLOCK",
    "ScheduledFault",
    "SystemClock",
    "VirtualTimeClock",
    "call_with_retry",
]
