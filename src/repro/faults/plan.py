"""Deterministic, seed-driven fault schedules.

A :class:`FaultPlan` decides, for every instrumented connector operation,
whether that call fails, times out, stalls, or loses its connection. Two
properties make the schedules usable as test oracles (IDEBench-style
adverse-condition evaluation, but reproducible):

* **Determinism.** Random sampling is keyed on
  ``(seed, op, source, n)`` where ``n`` is the per-``(op, source)`` call
  index — *not* on global arrival order — so the decision for "the 3rd
  ``execute`` against ``warehouse``" is identical no matter how executor
  threads interleave. Seeding uses :class:`random.Random` with a string
  key, which hashes with SHA-512 internally and is therefore independent
  of ``PYTHONHASHSEED``.
* **Replayability.** Every non-clean decision is recorded in the plan's
  schedule; :meth:`export` returns it in a canonical order and
  :meth:`digest` fingerprints it, so "same seed ⇒ byte-identical fault
  schedule" is directly assertable.

Scripted rules (:class:`FaultRule`) take precedence over sampling and
express outages ("``execute`` calls 2–5 against ``warehouse`` fail") or
time windows on the virtual clock ("the source is down between t=1 and
t=5").
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from dataclasses import dataclass, field

from ..errors import (
    ConnectionDiedError,
    SourceTimeoutError,
    SourceUnavailableError,
)

#: Decision kinds, in the order sampling weights are applied.
KINDS = ("error", "timeout", "disconnect", "latency")

#: Default mix of fault kinds when sampling (must sum to 1).
DEFAULT_WEIGHTS = {"error": 0.4, "timeout": 0.2, "disconnect": 0.2, "latency": 0.2}


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one connector call.

    ``kind`` is one of ``"none"`` (clean call), ``"error"`` (the source
    reports itself unavailable), ``"timeout"`` (the call exceeds the
    connector's timeout), ``"disconnect"`` (the connection dies
    mid-flight) or ``"latency"`` (the call is delayed by ``latency_s``
    but succeeds — unless the delay itself breaches the timeout).
    """

    kind: str
    latency_s: float = 0.0
    message: str = ""

    @property
    def clean(self) -> bool:
        return self.kind == "none"

    def to_error(self, op: str, source: str):
        """The exception this decision injects (None for clean/latency)."""
        detail = self.message or f"injected {self.kind} on {op} against {source}"
        if self.kind == "error":
            return SourceUnavailableError(detail)
        if self.kind == "timeout":
            return SourceTimeoutError(detail)
        if self.kind == "disconnect":
            return ConnectionDiedError(detail)
        return None


CLEAN = FaultDecision("none")


@dataclass(frozen=True)
class FaultRule:
    """A scripted fault: matched before any random sampling.

    ``op`` / ``source`` of ``None`` match anything. ``first``/``last``
    bound the per-``(op, source)`` call index (0-based, inclusive;
    ``last=None`` means forever). ``t_from``/``t_until`` bound the plan
    clock's time, enabling outage windows on a virtual clock.
    """

    kind: str
    op: str | None = None
    source: str | None = None
    first: int = 0
    last: int | None = None
    t_from: float | None = None
    t_until: float | None = None
    latency_s: float = 0.0
    message: str = ""

    def matches(self, op: str, source: str, n: int, now: float | None) -> bool:
        if self.op is not None and self.op != op:
            return False
        if self.source is not None and self.source != source:
            return False
        if n < self.first or (self.last is not None and n > self.last):
            return False
        if self.t_from is not None or self.t_until is not None:
            if now is None:
                return False
            if self.t_from is not None and now < self.t_from:
                return False
            if self.t_until is not None and now >= self.t_until:
                return False
        return True

    def decision(self) -> FaultDecision:
        return FaultDecision(self.kind, latency_s=self.latency_s, message=self.message)


@dataclass(frozen=True)
class ScheduledFault:
    """One realized (non-clean) decision, for export/replay assertions."""

    op: str
    source: str
    n: int
    kind: str
    latency_s: float

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "source": self.source,
            "n": self.n,
            "kind": self.kind,
            "latency_s": round(self.latency_s, 9),
        }


class FaultPlan:
    """Decides faults for connector operations, deterministically.

    ``rate`` is the default probability that any instrumented call
    faults; ``rates`` overrides it per operation name (``"connect"``,
    ``"execute"``, ``"create_temp_table"``, ``"simdb.query"``, ...).
    ``weights`` splits faulting calls between kinds; ``latency_s`` is the
    (lo, hi) range latency spikes are drawn from. ``rules`` are scripted
    faults checked first. A plan with ``rate=0`` and no rules is inert.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rate: float = 0.0,
        rates: dict[str, float] | None = None,
        weights: dict[str, float] | None = None,
        latency_s: tuple[float, float] = (0.05, 0.25),
        rules: tuple[FaultRule, ...] | list[FaultRule] = (),
        clock=None,
    ):
        self.seed = seed
        self.rate = rate
        self.rates = dict(rates or {})
        self.weights = dict(weights or DEFAULT_WEIGHTS)
        self.latency_range_s = latency_s
        self.rules = tuple(rules)
        self.clock = clock
        self.schedule: list[ScheduledFault] = []
        self._counters: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @classmethod
    def scripted(cls, rules: list[FaultRule], *, clock=None) -> "FaultPlan":
        """A plan that only follows the given script (no sampling)."""
        return cls(rules=rules, clock=clock)

    # ------------------------------------------------------------------ #
    def decide(self, op: str, source: str) -> FaultDecision:
        """The (recorded) fate of the next ``op`` call against ``source``."""
        now = self.clock.monotonic() if self.clock is not None else None
        with self._lock:
            key = (op, source)
            n = self._counters.get(key, 0)
            self._counters[key] = n + 1
        decision = self._scripted_decision(op, source, n, now)
        if decision is None:
            decision = self._sampled_decision(op, source, n)
        if not decision.clean:
            with self._lock:
                self.schedule.append(
                    ScheduledFault(op, source, n, decision.kind, decision.latency_s)
                )
        return decision

    def _scripted_decision(
        self, op: str, source: str, n: int, now: float | None
    ) -> FaultDecision | None:
        for rule in self.rules:
            if rule.matches(op, source, n, now):
                return rule.decision()
        return None

    def _sampled_decision(self, op: str, source: str, n: int) -> FaultDecision:
        rate = self.rates.get(op, self.rate)
        if rate <= 0.0:
            return CLEAN
        rng = random.Random(f"{self.seed}|{op}|{source}|{n}")
        if rng.random() >= rate:
            return CLEAN
        pick = rng.random() * sum(self.weights.get(k, 0.0) for k in KINDS)
        acc = 0.0
        kind = "error"
        for candidate in KINDS:
            acc += self.weights.get(candidate, 0.0)
            if pick < acc:
                kind = candidate
                break
        lo, hi = self.latency_range_s
        latency = lo + (hi - lo) * rng.random() if kind in ("latency", "timeout") else 0.0
        return FaultDecision(kind, latency_s=latency)

    # ------------------------------------------------------------------ #
    def calls(self, op: str | None = None) -> int:
        """Instrumented calls seen so far (optionally for one op)."""
        with self._lock:
            if op is None:
                return sum(self._counters.values())
            return sum(v for (o, _s), v in self._counters.items() if o == op)

    def export(self) -> list[dict]:
        """The realized fault schedule in canonical (replayable) order."""
        with self._lock:
            snapshot = list(self.schedule)
        return [f.to_dict() for f in sorted(snapshot, key=lambda f: (f.op, f.source, f.n))]

    def digest(self) -> str:
        """A stable fingerprint of the realized schedule."""
        payload = json.dumps(self.export(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def reset(self) -> None:
        """Forget counters and the realized schedule (fresh replay)."""
        with self._lock:
            self._counters.clear()
            self.schedule.clear()
