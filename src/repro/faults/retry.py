"""Retry with exponential backoff and deterministic jitter.

Transient connector failures (:class:`~repro.errors.TransientSourceError`)
are retried with capped exponential backoff. Jitter is drawn from a
seeded generator keyed on ``(seed, key, attempt)``, so a replayed failure
schedule waits the exact same virtual milliseconds on every run — the
determinism contract the chaos tests assert — while still de-correlating
real deployments that use distinct seeds per process.

Every attempt, wait and give-up is emitted as a ``retry.*`` decision
event so a recording shows *why* a request was slow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from .. import obs
from ..errors import TransientSourceError
from .clock import SYSTEM_CLOCK, Clock

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff parameters (delays are deterministic per key).

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries. ``jitter`` is the ± fraction applied to each delay.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s
        )
        if self.jitter <= 0:
            return raw
        rng = random.Random(f"{self.seed}|{key}|{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: Retry disabled: a single attempt, no waits.
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    clock: Clock | None = None,
    key: str = "",
    retry_on: tuple[type[BaseException], ...] = (TransientSourceError,),
) -> T:
    """Run ``fn`` under ``policy``, sleeping backoff on the given clock.

    Only ``retry_on`` exceptions are retried; anything else (permanent
    source errors, breaker-open rejections, programming errors)
    propagates immediately. The last transient error propagates once
    attempts are exhausted.
    """
    clock = clock or SYSTEM_CLOCK
    attempt = 0
    prior_ctx = None
    while True:
        attempt += 1
        try:
            if attempt == 1 or not obs.enabled():
                # The first try is the hot path: no extra span, no link.
                result = fn()
            else:
                if prior_ctx is None:
                    # The chain starts at the context attempt 1 failed in.
                    prior_ctx = obs.current_trace_context()
                with obs.span("retry.attempt", attempt=attempt, key=key) as attempt_span:
                    attempt_span.add_link("retry.prior_attempt", prior_ctx)
                    prior_ctx = attempt_span.context
                    result = fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                if obs.events_enabled():
                    obs.event(
                        "retry.gave_up",
                        "error",
                        f"attempt {attempt}/{policy.max_attempts} failed with "
                        f"{type(exc).__name__}: {exc}; no attempts left",
                        key=key,
                        attempts=attempt,
                    )
                raise
            delay = policy.delay_for(attempt, key)
            if obs.events_enabled():
                obs.event(
                    "retry.attempt",
                    "retrying",
                    f"attempt {attempt}/{policy.max_attempts} failed with "
                    f"{type(exc).__name__}: {exc}; backing off "
                    f"{delay * 1000.0:.1f}ms",
                    key=key,
                    attempt=attempt,
                    delay_s=round(delay, 6),
                )
            obs.counter("retry.attempts").inc()
            obs.histogram("retry.backoff_s").observe(delay)
            clock.sleep(delay)
            continue
        if attempt > 1:
            obs.counter("retry.recoveries").inc()
            if obs.events_enabled():
                obs.event(
                    "retry.succeeded",
                    "recovered",
                    f"succeeded on attempt {attempt}/{policy.max_attempts} "
                    "after transient failures",
                    key=key,
                    attempts=attempt,
                )
        return result
