"""Clocks for the fault layer: real time, or deterministic virtual time.

Every retry delay, breaker recovery window and injected latency spike in
this package goes through a :class:`Clock`, so a test (or a replayed
failure schedule) can run on :class:`VirtualTimeClock` and finish in
microseconds while producing *exactly* the same timeline on every run.
The production default is :class:`SystemClock`.

This is distinct from :class:`repro.obs.trace.VirtualClock`, which only
*reads* time for span stamps; the fault layer also needs ``sleep`` to
advance it (backoff waits, latency spikes).
"""

from __future__ import annotations

import threading
import time
from typing import Protocol


class Clock(Protocol):
    """What the fault/retry/breaker machinery needs from a clock."""

    def monotonic(self) -> float:  # pragma: no cover - protocol
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol
        ...


class SystemClock:
    """Wall-clock time; ``sleep`` really sleeps."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualTimeClock:
    """A thread-safe virtual clock where sleeping *is* advancing.

    ``sleep`` advances the clock instead of blocking, so a scripted
    failure schedule (including every backoff wait) replays in constant
    real time. ``advance`` exists for tests that move time without a
    sleeper (e.g. to expire a breaker's recovery window).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(max(seconds, 0.0))

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += seconds
            return self._now


#: Shared default so callers can write ``clock or SYSTEM_CLOCK``.
SYSTEM_CLOCK = SystemClock()
