"""Fault injection at the data-source boundary.

:class:`FaultyDataSource` wraps any :class:`~repro.connectors.connection.
DataSource` and consults a :class:`~repro.faults.plan.FaultPlan` before
every ``connect`` / ``execute`` / ``create_temp_table``, injecting the
planned errors, latency spikes, timeouts and connection deaths. It keeps
the inner source's ``name`` so cache keys, pool stats and events are
indistinguishable from the healthy system's — only the failures are new.

Timeouts are *modeled*, not enforced with alarms: an injected latency is
slept on the wrapper's clock (virtual in tests) and compared against the
connector's ``timeout_s``; breaching it raises
:class:`~repro.errors.SourceTimeoutError` after sleeping only the
timeout, exactly like a client-side statement timeout would behave.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..connectors.connection import Connection
from ..datatypes import LogicalType
from ..tde.storage.table import Table
from .clock import SYSTEM_CLOCK, Clock
from .plan import FaultDecision, FaultPlan


class FaultyDataSource:
    """A data source whose calls can fail according to a FaultPlan."""

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        *,
        clock: Clock | None = None,
        timeout_s: float | None = None,
    ):
        self.inner = inner
        self.plan = plan
        self.clock = clock or SYSTEM_CLOCK
        self.timeout_s = timeout_s
        self.name = inner.name
        self.dialect = inner.dialect
        self.query_language = inner.query_language
        self.injected = 0
        if plan.clock is None:
            plan.clock = self.clock

    # ------------------------------------------------------------------ #
    def _apply(self, op: str) -> None:
        """Realize the plan's decision for one call (may raise/sleep)."""
        decision = self.plan.decide(op, self.name)
        if decision.clean:
            return
        self.injected += 1
        obs.counter("fault.injected").inc()
        if obs.events_enabled():
            obs.event(
                "fault.injected",
                decision.kind,
                f"fault plan injected {decision.kind} into {op} against "
                f"{self.name}"
                + (
                    f" (latency {decision.latency_s * 1000.0:.1f}ms)"
                    if decision.latency_s
                    else ""
                ),
                op=op,
                source=self.name,
                latency_s=round(decision.latency_s, 6),
            )
        self._realize(decision, op)

    def _realize(self, decision: FaultDecision, op: str) -> None:
        from ..errors import SourceTimeoutError

        if decision.kind == "latency":
            budget = self.timeout_s
            if budget is not None and decision.latency_s > budget:
                self.clock.sleep(budget)
                raise SourceTimeoutError(
                    f"injected latency {decision.latency_s:.3f}s exceeded the "
                    f"{budget:.3f}s timeout on {op} against {self.name}",
                    timeout_s=budget,
                )
            self.clock.sleep(decision.latency_s)
            return
        if decision.kind == "timeout":
            self.clock.sleep(
                self.timeout_s if self.timeout_s is not None else decision.latency_s
            )
            raise SourceTimeoutError(
                f"injected timeout on {op} against {self.name}",
                timeout_s=self.timeout_s,
            )
        error = decision.to_error(op, self.name)
        assert error is not None
        raise error

    # ------------------------------------------------------------------ #
    def connect(self) -> Connection:
        self._apply("connect")
        inner_conn = self.inner.connect()
        return Connection(self, _FaultDriver(self, inner_conn))

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        return self.inner.schema_of(table)

    def table_names(self) -> list[str]:
        names = getattr(self.inner, "table_names", None)
        return names() if names is not None else []

    def __getattr__(self, item: str) -> Any:
        # Transparent for source-specific extras (e.g. SimDb's .db).
        return getattr(self.inner, item)


class _FaultDriver:
    """Driver that injects faults around an inner Connection's calls."""

    def __init__(self, source: FaultyDataSource, inner_conn: Connection):
        self.source = source
        self.inner_conn = inner_conn

    def _guard(self, op: str) -> None:
        from ..errors import ConnectionDiedError

        try:
            self.source._apply(op)
        except ConnectionDiedError:
            # A death severs the remote session, not just this statement.
            self.inner_conn.close()
            raise

    def execute(self, text: str) -> Table:
        self._guard("execute")
        return self.inner_conn.execute(text)

    def create_temp_table(self, name: str, table: Table) -> None:
        self._guard("create_temp_table")
        self.inner_conn.create_temp_table(name, table)

    def drop_temp_table(self, name: str) -> None:
        self.inner_conn.drop_temp_table(name)

    def close(self) -> None:
        self.inner_conn.close()
