"""repro — a reproduction of "On Improving User Response Times in Tableau"
(SIGMOD 2015).

The package implements the paper's data-processing stack from scratch:

* ``repro.tde`` — the Tableau Data Engine: a columnar store with dictionary
  compression, RLE/delta encodings, a TQL front end, a rule-based optimizer
  and a Volcano execution engine with Exchange-based parallel plans.
* ``repro.queries`` — the internal (VizQL-style) query model and compiler.
* ``repro.sql`` — SQL generation/parsing for the simulated remote databases.
* ``repro.connectors`` — connections, pooling, simulated backends, text
  sources and shadow extracts.
* ``repro.core`` — the paper's headline contribution: intelligent/literal
  query caches, query-batch processing, query fusion and the concurrent
  executor.
* ``repro.dashboard`` — dashboards, zones and interactive filter actions.
* ``repro.server`` — Tableau Server / Data Server: publishing, proxying,
  temporary-table state, distributed caching and TDE clusters.
* ``repro.sim`` — the virtual-time multicore machine used to measure
  intra-query parallelism on hosts without many cores.
* ``repro.workloads`` — deterministic synthetic workloads (FAA flights,
  dashboards, multi-user traffic).
* ``repro.obs`` — the Performance Recorder analogue: span tracing,
  metrics (counters/gauges/latency histograms) and recording export,
  off by default and allocation-free when off.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim vs. measured record.
"""

__version__ = "0.9.0"
