"""Shadow extracts for file-based sources (paper 4.4).

"When a text or excel file is connected, Tableau extracts the data from
the file, and stores them in temporary tables in the TDE. Subsequently,
all queries are executed by the TDE instead of parsing the entire file
each time. This greatly improves the query execution time, however, we
need to pay a one-time cost of creating the temporary database. Last but
not least, the system can persist extracts in workbooks to avoid
recreating temporary tables at every load."

Two data sources for the same file expose the trade-off:

* :class:`JetLikeDataSource` — the legacy path: re-parse the file for
  every query, with the 4GB parse limit;
* :class:`FileDataSource` — shadow extract: parse once into an embedded
  TDE, answer every query from columnar storage, optionally persisting
  the extract through a :class:`ShadowExtractStore`.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path

from .. import obs
from ..datatypes import LogicalType
from ..errors import SourceError, SourceUnavailableError
from ..sql.dialects import ANSI
from ..tde.engine import DataEngine
from ..tde.storage.filepack import pack_database, unpack_database
from ..tde.storage.table import Table
from .connection import Connection, TdeDataSource, _TdeDriver
from .textfile import JET_PARSE_LIMIT_BYTES, parse_text_file, parse_workbook

#: Table name under which a file's rows are exposed.
FILE_TABLE = "Extract.data"


class ShadowExtractStore:
    """Persists shadow extracts keyed by file identity (path+mtime+size)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _key(self, path: Path) -> Path:
        stat = path.stat()
        digest = hashlib.sha256(
            f"{path.resolve()}|{stat.st_mtime_ns}|{stat.st_size}".encode()
        ).hexdigest()[:24]
        return self.directory / f"{digest}.tde"

    def load(self, path: Path) -> DataEngine | None:
        key = self._key(path)
        if key.exists():
            self.hits += 1
            engine = DataEngine(path.stem)
            engine.database = unpack_database(key)
            from ..tde.optimizer.catalog import StorageCatalog

            engine.catalog = StorageCatalog(engine.database)
            return engine
        self.misses += 1
        return None

    def save(self, path: Path, engine: DataEngine) -> None:
        pack_database(engine.database, self._key(path))


class FileDataSource:
    """A text/workbook file served through a shadow extract."""

    query_language = "tql"

    def __init__(
        self,
        path: str | Path,
        *,
        store: ShadowExtractStore | None = None,
        delimiter: str = ",",
        workbook: bool = False,
    ):
        self.path = Path(path)
        self.name = f"file:{self.path.name}"
        self.dialect = ANSI
        self.store = store
        self.delimiter = delimiter
        self.workbook = workbook
        self.extract_creations = 0
        #: True while queries are being answered from a stale extract
        #: because the underlying file became unreadable.
        self.serving_stale = False
        self._engine: DataEngine | None = None
        self._stale_engine: DataEngine | None = None
        self._lock = threading.Lock()
        self._temp_counter = 0

    # ------------------------------------------------------------------ #
    def _ensure_engine(self) -> DataEngine:
        with self._lock:
            if self._engine is not None:
                return self._engine
            try:
                if self.store is not None:
                    cached = self.store.load(self.path)
                    if cached is not None:
                        self._engine = cached
                        self.serving_stale = False
                        return cached
                engine = DataEngine(self.path.stem)
                if self.workbook:
                    for sheet, table in parse_workbook(self.path).items():
                        engine.create_table(f"Extract.{sheet}", table)
                else:
                    table = parse_text_file(self.path, delimiter=self.delimiter)
                    engine.create_table(FILE_TABLE, table)
            except OSError as exc:
                # The file vanished or became unreadable. Degrade to the
                # extract we already built (if any) instead of failing;
                # otherwise surface a retryable source error, not a raw
                # OSError the pipeline's degradation net cannot catch.
                if self._stale_engine is not None:
                    self.serving_stale = True
                    if obs.events_enabled():
                        obs.event(
                            "degrade.stale_extract",
                            "stale",
                            f"file {self.path.name} is unreadable "
                            f"({type(exc).__name__}: {exc}); serving the "
                            "previous shadow extract flagged stale",
                            source=self.name,
                        )
                    self._engine = self._stale_engine
                    return self._engine
                raise SourceUnavailableError(
                    f"cannot read {self.path}: {exc}"
                ) from exc
            self.extract_creations += 1
            self.serving_stale = False
            if self.store is not None:
                self.store.save(self.path, engine)
            self._engine = engine
            return engine

    def invalidate(self) -> None:
        """Drop the in-memory extract (e.g. after the file changed).

        The dropped extract is retained as a stale fallback: if the next
        re-parse fails because the file is gone, queries degrade to the
        last good extract (``serving_stale`` flips on) rather than erroring.
        """
        with self._lock:
            if self._engine is not None:
                self._stale_engine = self._engine
            self._engine = None

    def connect(self) -> Connection:
        engine = self._ensure_engine()
        with self._lock:
            self._temp_counter += 1
            schema = f"tmp_{self._temp_counter}"
        return Connection(self, _TdeDriver(engine, schema))

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        return self._ensure_engine().table(table).schema()

    def table_names(self) -> list[str]:
        engine = self._ensure_engine()
        return [f"{s}.{t}" for s, t, _ in engine.database.iter_tables()]


class _JetDriver:
    """Legacy driver: parse the whole file on every query (paper 4.4)."""

    def __init__(self, source: "JetLikeDataSource"):
        self.source = source

    def execute(self, text: str) -> Table:
        engine = self.source._fresh_engine()  # re-parses: the Jet tax
        return engine.query(text)

    def create_temp_table(self, name: str, table: Table) -> None:
        raise SourceError("legacy file driver does not support temporary tables")

    def drop_temp_table(self, name: str) -> None:  # pragma: no cover - nothing to do
        pass

    def close(self) -> None:  # pragma: no cover - nothing to hold
        pass


class JetLikeDataSource:
    """The pre-shadow-extract behaviour: per-query parsing + 4GB limit."""

    query_language = "tql"

    def __init__(
        self,
        path: str | Path,
        *,
        delimiter: str = ",",
        parse_limit_bytes: int = JET_PARSE_LIMIT_BYTES,
    ):
        self.path = Path(path)
        self.name = f"jet:{self.path.name}"
        self.dialect = ANSI
        self.delimiter = delimiter
        self.parse_limit_bytes = parse_limit_bytes
        self.parse_count = 0

    def _fresh_engine(self) -> DataEngine:
        table = parse_text_file(
            self.path, delimiter=self.delimiter, max_bytes=self.parse_limit_bytes
        )
        self.parse_count += 1
        engine = DataEngine(self.path.stem)
        engine.create_table(FILE_TABLE, table)
        return engine

    def connect(self) -> Connection:
        return Connection(self, _JetDriver(self))

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        if table != FILE_TABLE:
            raise SourceError(f"legacy file source exposes only {FILE_TABLE}")
        return self._fresh_engine().table(FILE_TABLE).schema()
