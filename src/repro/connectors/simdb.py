"""SimulatedDatabase: a small but real SQL server with modeled timing.

This substitutes for the paper's spectrum of remote backends (3.1, 3.5).
It actually parses and executes the SQL it receives (over the TDE's
storage and execution engine), while *timing* follows a configurable
profile so that the concurrency experiments reproduce real phenomena:

* a worker pool of W CPUs — concurrent queries queue once W is saturated;
* single-thread-per-query vs parallel-plan architectures
  (``per_query_parallelism``): "Many architectures use a single thread per
  query. That means that a serial execution of a query batch would leave a
  tremendous amount of processing power idle.";
* connection limits and admission throttling ("the database is likely to
  throttle them based on available resources or a hard-coded threshold");
* MARS-style single-connection concurrency vs one-statement-per-connection;
* session-local temporary tables, with an optional global DDL lock
  ("in certain databases, session-local DDL operations for temporary
  structures take a high-level lock").

Service times sleep inside worker threads, so wall-clock measurements of
concurrent workloads are physically meaningful even on a single-core host.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

from .. import obs
from ..datatypes import LogicalType
from ..errors import ConnectionLimitError, SourceError, SourceTimeoutError, SqlError
from ..expr.ast import Literal
from ..sql.dialects import ANSI, Capabilities
from ..sql.parser import (
    CreateTempTable,
    DropTable,
    InsertValues,
    SelectStatement,
    parse_statement,
)
from ..tde.engine import DataEngine
from ..tde.optimizer.cost import estimate_plan
from ..tde.optimizer.parallel import PlannerOptions
from ..tde.storage.table import Table
from ..tde.tql.plan import LogicalPlan, TableScan, transform_up
from .connection import Connection


@dataclass(frozen=True)
class ServerProfile:
    """Architecture and timing profile of a simulated backend."""

    name: str = "ansi-server"
    dialect: Capabilities = ANSI
    workers: int = 4
    per_query_parallelism: int = 1
    max_connections: int = 32
    max_concurrent_queries: int | None = None
    mars: bool = False
    connect_time_s: float = 0.004
    query_overhead_s: float = 0.002
    work_unit_time_s: float = 2e-8
    transfer_row_time_s: float = 2e-7
    temp_table_overhead_s: float = 0.003
    temp_table_row_time_s: float = 2e-7
    ddl_global_lock: bool = False
    time_scale: float = 1.0
    #: Server-side statement timeout: a query whose modeled service time
    #: exceeds this burns only the budget, then fails with
    #: :class:`~repro.errors.SourceTimeoutError` (retryable).
    statement_timeout_s: float | None = None

    def scaled(self, factor: float) -> "ServerProfile":
        return replace(self, time_scale=factor)


#: Pre-canned profiles used by the experiments.
SERIAL_PER_QUERY = ServerProfile(name="serial-db", workers=4, per_query_parallelism=1)
PARALLEL_PLANS = ServerProfile(name="parallel-db", workers=4, per_query_parallelism=4)
THROTTLED = ServerProfile(name="throttled-db", workers=4, max_concurrent_queries=2)
MARS_SINGLE_CONN = ServerProfile(name="mars-db", workers=4, mars=True)


class ServerStats:
    """Thread-safe aggregate statistics for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.statements = 0
        self.rows_transferred = 0
        self.busy_seconds = 0.0
        self.temp_tables_created = 0
        self.peak_concurrency = 0
        self._inflight = 0

    def enter(self) -> None:
        with self._lock:
            self._inflight += 1
            self.peak_concurrency = max(self.peak_concurrency, self._inflight)

    def leave(self) -> None:
        with self._lock:
            self._inflight -= 1

    def record(self, **deltas) -> None:
        with self._lock:
            for key, delta in deltas.items():
                setattr(self, key, getattr(self, key) + delta)


class SimulatedDatabase:
    """One simulated server instance holding tables and sessions."""

    def __init__(
        self,
        name: str,
        profile: ServerProfile | None = None,
        *,
        fault_plan=None,
        engine_options: PlannerOptions | None = None,
    ):
        self.name = name
        self.profile = profile or ServerProfile()
        #: Optional server-side :class:`~repro.faults.plan.FaultPlan` —
        #: the same op names ("connect"/"execute") the client-side
        #: injector uses, so one plan can script either layer.
        self.fault_plan = fault_plan
        # The inner engine runs serially; the *profile* decides how much
        # virtual parallelism the backend claims to have.
        self.engine = DataEngine(
            name,
            options=engine_options
            or PlannerOptions(max_dop=1, enable_parallel=False),
        )
        self.stats = ServerStats()
        self._session_counter = 0
        self._connections = 0
        self._lock = threading.Lock()
        self._worker_slots = threading.Semaphore(self.profile.workers)
        self._admission = (
            threading.Semaphore(self.profile.max_concurrent_queries)
            if self.profile.max_concurrent_queries is not None
            else None
        )
        self._ddl_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Loading (server-side, not timed)
    # ------------------------------------------------------------------ #
    def load_table(self, name: str, table: Table) -> None:
        self.engine.create_table(name, table, replace=True)

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        return self.engine.table(table).schema()

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def open_session(self) -> "SimSession":
        self._apply_fault("connect")
        with self._lock:
            if self._connections >= self.profile.max_connections:
                raise ConnectionLimitError(
                    f"{self.name}: connection limit {self.profile.max_connections} reached"
                )
            self._connections += 1
            self._session_counter += 1
            session_id = self._session_counter
        self._sleep(self.profile.connect_time_s)
        return SimSession(self, session_id)

    def _release_session(self) -> None:
        with self._lock:
            self._connections -= 1

    @property
    def open_connections(self) -> int:
        return self._connections

    # ------------------------------------------------------------------ #
    # Faults
    # ------------------------------------------------------------------ #
    def _apply_fault(self, op: str) -> None:
        """Consult the server-side fault plan, if any, for this operation."""
        if self.fault_plan is None:
            return
        decision = self.fault_plan.decide(op, self.name)
        if decision.clean:
            return
        if decision.kind == "latency":
            # Modeled server slowness: scaled like every other service time.
            self._sleep(decision.latency_s)
            return
        raise decision.to_error(op, self.name)

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def _sleep(self, seconds: float) -> None:
        scaled = seconds * self.profile.time_scale
        if scaled > 0:
            time.sleep(scaled)

    def service(self, cpu_seconds: float, overhead_s: float) -> float:
        """Hold worker slots for the duration of a query's CPU work.

        Acquires one slot (blocking — the queueing effect), then opportun-
        istically grabs up to ``per_query_parallelism - 1`` more; elapsed
        time is cpu / slots_held, mirroring how a parallel plan uses idle
        CPUs when they exist but degrades under concurrency.
        """
        self.stats.enter()
        queued = time.monotonic()
        try:
            if self._admission is not None:
                self._admission.acquire()
            try:
                self._worker_slots.acquire()
                obs.histogram("simdb.queue_wait_s").observe(time.monotonic() - queued)
                held = 1
                while held < self.profile.per_query_parallelism and self._worker_slots.acquire(
                    blocking=False
                ):
                    held += 1
                elapsed = overhead_s + cpu_seconds / held
                timeout = self.profile.statement_timeout_s
                try:
                    if timeout is not None and elapsed > timeout:
                        # Burn only the budget, then kill the statement.
                        self._sleep(timeout)
                        obs.counter("simdb.statement_timeouts").inc()
                        raise SourceTimeoutError(
                            f"{self.name}: statement exceeded the "
                            f"{timeout:.3f}s server-side timeout "
                            f"(needed {elapsed:.3f}s)",
                            timeout_s=timeout,
                        )
                    self._sleep(elapsed)
                finally:
                    for _ in range(held):
                        self._worker_slots.release()
            finally:
                if self._admission is not None:
                    self._admission.release()
        finally:
            self.stats.leave()
        self.stats.record(busy_seconds=cpu_seconds + overhead_s)
        obs.histogram("simdb.service_s").observe(elapsed)
        return elapsed


class SimSession:
    """A server-side session: temp-table namespace + statement execution."""

    def __init__(self, db: SimulatedDatabase, session_id: int):
        self.db = db
        self.session_id = session_id
        self.temp_schema = f"sess{session_id}"
        self.temp_tables: dict[str, str] = {}  # client name -> qualified name
        self.closed = False
        self._statement_lock = None if db.profile.mars else threading.Lock()

    # ------------------------------------------------------------------ #
    def execute(self, sql: str) -> Table:
        if self.closed:
            raise SourceError("session closed")
        if self._statement_lock is not None:
            # One statement at a time per connection unless MARS.
            with self._statement_lock:
                return self._execute(sql)
        return self._execute(sql)

    def _execute(self, sql: str) -> Table:
        self.db._apply_fault("execute")
        stmt = parse_statement(sql)
        self.db.stats.record(statements=1)
        if isinstance(stmt, SelectStatement):
            return self._select(stmt.plan)
        if isinstance(stmt, CreateTempTable):
            return self._create_temp(stmt)
        if isinstance(stmt, InsertValues):
            return self._insert(stmt)
        if isinstance(stmt, DropTable):
            self._drop(stmt.name)
            return Table({})
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    def _resolve(self, plan: LogicalPlan) -> LogicalPlan:
        mapping = dict(self.temp_tables)

        def fn(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, TableScan) and node.table in mapping:
                return TableScan(mapping[node.table])
            return node

        return transform_up(plan, fn)

    def _select(self, plan: LogicalPlan) -> Table:
        with obs.span("simdb.select", server=self.db.name) as sp:
            plan = self._resolve(plan)
            estimate = estimate_plan(plan, self.db.engine.catalog)
            cpu = estimate.cost * self.db.profile.work_unit_time_s
            with obs.span("simdb.service", server=self.db.name):
                # Queueing for worker slots + the modeled CPU burn: the
                # part of a backend query that contends, in its own span
                # so backend time splits into "service" vs row transfer.
                self.db.service(cpu, self.db.profile.query_overhead_s)
            result = self.db.engine.query(plan)
            transfer = result.n_rows * self.db.profile.transfer_row_time_s
            self.db._sleep(transfer)
            self.db.stats.record(queries=1, rows_transferred=result.n_rows)
            obs.counter("simdb.queries").inc()
            obs.counter("simdb.rows_transferred").inc(result.n_rows)
            sp.set(rows=result.n_rows)
        return result

    def _create_temp(self, stmt: CreateTempTable) -> Table:
        if not self.db.profile.dialect.supports_temp_tables:
            raise SourceError(f"{self.db.name} does not support temporary tables")
        qualified = f"{self.temp_schema}.{stmt.name.replace('.', '_')}"
        if stmt.plan is not None:
            table = self._select(stmt.plan)
        else:
            table = Table.from_pydict({name: [] for name, _t in stmt.columns or ()},
                                      types=dict(stmt.columns or ()))
        self._timed_ddl(self.db.profile.temp_table_overhead_s)
        self.db.engine.create_table(qualified, table, replace=True)
        self.temp_tables[stmt.name] = qualified
        self.db.stats.record(temp_tables_created=1)
        return Table({})

    def _insert(self, stmt: InsertValues) -> Table:
        if stmt.name not in self.temp_tables:
            raise SourceError(f"unknown temp table {stmt.name}")
        qualified = self.temp_tables[stmt.name]
        existing = self.db.engine.table(qualified)
        names = existing.column_names
        data = {n: [row[i] for row in stmt.rows] for i, n in enumerate(names)}
        incoming = Table.from_pydict(data, types=existing.schema())
        merged = Table.concat([existing, incoming]) if existing.n_rows else incoming
        self._timed_ddl(len(stmt.rows) * self.db.profile.temp_table_row_time_s)
        self.db.engine.create_table(qualified, merged, replace=True)
        return Table({})

    def bulk_load_temp(self, name: str, table: Table) -> None:
        """Driver-level temp-table load (models batched INSERT traffic)."""
        if not self.db.profile.dialect.supports_temp_tables:
            raise SourceError(f"{self.db.name} does not support temporary tables")
        qualified = f"{self.temp_schema}.{name.replace('.', '_')}"
        cost = (
            self.db.profile.temp_table_overhead_s
            + table.n_rows * self.db.profile.temp_table_row_time_s
        )
        self._timed_ddl(cost)
        self.db.engine.create_table(qualified, table, replace=True)
        self.temp_tables[name] = qualified
        self.db.stats.record(temp_tables_created=1, rows_transferred=table.n_rows)

    def _timed_ddl(self, seconds: float) -> None:
        if self.db.profile.ddl_global_lock:
            with self.db._ddl_lock:
                self.db._sleep(seconds)
        else:
            self.db._sleep(seconds)

    def _drop(self, name: str) -> None:
        if name in self.temp_tables:
            self.db.engine.drop_table(self.temp_tables.pop(name))

    def close(self) -> None:
        if not self.closed:
            for name in list(self.temp_tables):
                self._drop(name)
            self.closed = True
            self.db._release_session()


class _SimDbDriver:
    """Client-side driver wrapping a server session."""

    def __init__(self, session: SimSession):
        self.session = session

    def execute(self, text: str) -> Table:
        return self.session.execute(text)

    def create_temp_table(self, name: str, table: Table) -> None:
        self.session.bulk_load_temp(name, table)

    def drop_temp_table(self, name: str) -> None:
        self.session._drop(name)

    def close(self) -> None:
        self.session.close()


class SimDbDataSource:
    """Client-facing data source for a simulated server."""

    query_language = "sql"

    def __init__(self, db: SimulatedDatabase, *, timeout_s: float | None = None):
        self.db = db
        self.name = db.name
        self.dialect = db.profile.dialect
        #: Advertised per-connector statement timeout (see Connection);
        #: defaults to the server's own statement timeout.
        self.timeout_s = (
            timeout_s if timeout_s is not None else db.profile.statement_timeout_s
        )

    def connect(self) -> Connection:
        return Connection(self, _SimDbDriver(self.db.open_session()))

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        return self.db.schema_of(table)

    def table_names(self) -> list[str]:
        return [f"{s}.{t}" for s, t, _ in self.db.engine.database.iter_tables()]
