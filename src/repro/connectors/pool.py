"""Connection pooling with age-wise eviction (paper 3.5).

"The process of opening a connection, retrieving configuration information
and metadata are costly, therefore, connections are pooled and kept around
even if idle. In addition, connection pooling plays an important role in
preserving and reusing temporary structures stored in remote sessions. ...
An age-wise eviction policy is used in case of local memory pressure or to
release remote resources unused for longer periods of time."

Checked-out connections are multiplexed across callers "regardless of
their remote state": acquire() prefers a connection that already has the
requested temporary structure, falling back to any idle one, and finally
opening a new one up to the pool's limit.

Robustness: an optional :class:`~repro.faults.breaker.CircuitBreaker`
gates ``acquire`` — when the source keeps failing, callers are rejected
fast with :class:`~repro.errors.CircuitOpenError` instead of piling
retries onto a sick backend. Callers report query failures through
``release(conn, failed=True)`` (or ``discard``), which closes the member
(pool-member death) and feeds the breaker.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from .. import obs
from ..errors import SourceError, TransientSourceError
from .connection import Connection, DataSource


class PoolStats:
    def __init__(self) -> None:
        self.opened = 0
        self.reused = 0
        self.evicted = 0
        self.wait_events = 0
        self.discarded = 0
        self.connect_failures = 0


class ConnectionPool:
    """A bounded pool of connections to one data source."""

    def __init__(
        self,
        source: DataSource,
        *,
        max_connections: int = 8,
        idle_ttl_s: float = 300.0,
        breaker=None,
    ):
        self.source = source
        self.max_connections = max_connections
        self.idle_ttl_s = idle_ttl_s
        self.breaker = breaker
        self.stats = PoolStats()
        self._idle: list[Connection] = []
        self._busy: set[Connection] = set()
        self._opening = 0  # slots reserved by in-flight connect() calls
        self._lock = threading.Condition()
        self._closed = False
        #: id(conn) -> TraceContext of the current / most recent holder.
        #: Populated only while tracing is on; a caller that *blocked*
        #: for a connection links ``pool.waited_behind`` to the request
        #: it queued behind, so pool contention is causally attributed.
        self._holders: dict[int, object] = {}
        self._last_holder: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    def acquire(self, *, prefer_temp_table: str | None = None) -> Connection:
        """Check out a connection, opening one if needed.

        ``prefer_temp_table`` selects an idle connection whose remote
        session already holds that temporary structure, avoiding a
        re-creation round trip (paper 3.5: "popular temporary structures
        will be duplicated in several connections", so preference — not a
        guarantee — is the right contract).
        """
        if self.breaker is not None:
            self.breaker.admit()  # raises CircuitOpenError when open
        wait_started: float | None = None
        with self._lock:
            while True:
                if self._closed:
                    raise SourceError("pool is closed")
                conn = self._pick_idle(prefer_temp_table)
                if conn is not None:
                    self._busy.add(conn)
                    self.stats.reused += 1
                    if obs.enabled():
                        self._note_checkout(conn, waited=wait_started is not None)
                    if prefer_temp_table is not None and conn.has_temp_table(
                        prefer_temp_table
                    ):
                        reason = (
                            f"idle connection already holds temp table "
                            f"{prefer_temp_table!r}: reusing its remote session"
                        )
                    elif prefer_temp_table is not None:
                        reason = (
                            f"reused an idle connection (none held temp table "
                            f"{prefer_temp_table!r}; it must be re-created)"
                        )
                    else:
                        reason = "reused an idle connection"
                    self._record_acquire("reused", wait_started, reason)
                    return conn
                if (
                    len(self._busy) + len(self._idle) + self._opening
                    < self.max_connections
                ):
                    self._opening += 1  # reserve the slot across connect()
                    break
                self.stats.wait_events += 1
                if wait_started is None:
                    wait_started = time.monotonic()
                self._lock.wait()
        try:
            with obs.span("pool.connect", source=self.source.name):
                conn = self.source.connect()
        except SourceError:
            with self._lock:
                self._opening -= 1
                self.stats.connect_failures += 1
                self._lock.notify()  # the reserved slot is free again
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        with self._lock:
            self._opening -= 1
            self._busy.add(conn)
            self.stats.opened += 1
            if obs.enabled():
                self._note_checkout(conn, waited=False)
            self._record_acquire(
                "opened",
                wait_started,
                f"no idle connection available: opened a new one "
                f"({len(self._busy) + len(self._idle)}/{self.max_connections})",
            )
        return conn

    def _note_checkout(self, conn: Connection, *, waited: bool) -> None:
        """Trace bookkeeping at checkout (caller holds the lock, obs on)."""
        if waited:
            span = obs.current_span()
            if span is not None and span.trace_id:
                # The previous holder is why this caller queued: record
                # the causal edge (a no-op when that request ran untraced).
                span.add_link(
                    "pool.waited_behind",
                    self._last_holder.get(id(conn)),
                    source=self.source.name,
                )
        self._holders[id(conn)] = obs.current_trace_context()

    def _record_acquire(
        self, how: str, wait_started: float | None, reason: str
    ) -> None:
        obs.counter(f"pool.{how}").inc()
        waited = None
        if wait_started is not None:
            waited = time.monotonic() - wait_started
            obs.histogram("pool.wait_s").observe(waited)
        if obs.events_enabled():
            if waited is not None:
                reason += f" after waiting {waited * 1000.0:.1f}ms for a slot"
            obs.event(
                "pool",
                how,
                reason,
                source=self.source.name,
                busy=len(self._busy),
                idle=len(self._idle),
            )

    def _pick_idle(self, prefer_temp_table: str | None) -> Connection | None:
        if not self._idle:
            return None
        if prefer_temp_table is not None:
            for i, conn in enumerate(self._idle):
                if conn.has_temp_table(prefer_temp_table):
                    return self._idle.pop(i)
        return self._idle.pop()

    def release(self, conn: Connection, *, failed: bool = False) -> None:
        """Return a connection; ``failed=True`` reports a query failure.

        A failed member is closed instead of going back to idle — its
        remote session state is suspect (the death may have severed it)
        — and the failure feeds the breaker. Healthy releases feed the
        breaker a success, resetting its consecutive-failure count.
        """
        if failed:
            self.discard(conn)
            return
        with self._lock:
            self._busy.discard(conn)
            if self._holders:
                self._last_holder[id(conn)] = self._holders.pop(id(conn), None)
            if conn.is_open and not self._closed:
                self._idle.append(conn)
            self._lock.notify()
        if self.breaker is not None:
            self.breaker.record_success()

    def discard(self, conn: Connection) -> None:
        """Close and drop a (suspected dead) member, feeding the breaker."""
        with self._lock:
            self._busy.discard(conn)
            self._holders.pop(id(conn), None)
            self._last_holder.pop(id(conn), None)
            conn.close()
            self.stats.discarded += 1
            self._lock.notify()
        obs.counter("pool.discarded").inc()
        if obs.events_enabled():
            obs.event(
                "pool",
                "discarded",
                "connection failed mid-flight: closed instead of returning "
                "it to the pool (remote session state is suspect)",
                source=self.source.name,
            )
        if self.breaker is not None:
            self.breaker.record_failure()

    @contextmanager
    def connection(self, *, prefer_temp_table: str | None = None) -> Iterator[Connection]:
        """Check out a connection; transient failures discard the member."""
        conn = self.acquire(prefer_temp_table=prefer_temp_table)
        try:
            yield conn
        except TransientSourceError:
            self.release(conn, failed=True)
            raise
        except BaseException:
            # Non-transient errors (bad SQL, logic bugs) say nothing about
            # the member's health: return it without penalizing the source.
            self.release(conn)
            raise
        else:
            self.release(conn)

    # ------------------------------------------------------------------ #
    def evict_idle(self, *, older_than_s: float | None = None) -> int:
        """Close idle connections unused for longer than the TTL."""
        ttl = self.idle_ttl_s if older_than_s is None else older_than_s
        evicted = 0
        with self._lock:
            keep: list[Connection] = []
            for conn in self._idle:
                if conn.idle_seconds() > ttl:
                    if obs.events_enabled():
                        obs.event(
                            "pool",
                            "evicted",
                            f"idle for {conn.idle_seconds():.1f}s, over the "
                            f"{ttl:.1f}s limit: closed to release remote "
                            f"resources",
                            source=self.source.name,
                        )
                    conn.close()
                    evicted += 1
                else:
                    keep.append(conn)
            self._idle = keep
            self.stats.evicted += evicted
        if evicted:
            obs.counter("pool.evicted").inc(evicted)
        return evicted

    def size(self) -> int:
        with self._lock:
            return len(self._idle) + len(self._busy)

    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for conn in self._idle:
                conn.close()
            self._idle.clear()
            self._holders.clear()
            self._last_holder.clear()
            self._lock.notify_all()
