"""Connection and data-source abstractions.

A :class:`DataSource` mints :class:`Connection` objects; a connection
executes textual queries (SQL for remote servers, TQL for the embedded
TDE), owns session-local temporary tables, and records usage statistics
used by the pool's eviction policy.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Protocol

from ..datatypes import LogicalType
from ..errors import ConnectionDiedError, SourceError
from ..sql.dialects import Capabilities
from ..tde.engine import DataEngine
from ..tde.storage.table import Table


class Driver(Protocol):
    """Backend-specific session handle behind a connection."""

    def execute(self, text: str) -> Table:  # pragma: no cover - protocol
        ...

    def create_temp_table(self, name: str, table: Table) -> None:  # pragma: no cover
        ...

    def drop_temp_table(self, name: str) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class Connection:
    """A pooled connection to one data source.

    Tracks the temporary tables created through it so that subsequent
    queries in the same batch (or later batches against the same
    dashboard) can reuse the remote state (paper 3.5).
    """

    _ids = iter(range(1, 10**9))

    def __init__(self, data_source: "DataSource", driver: Driver):
        self.data_source = data_source
        self.driver = driver
        self.connection_id = next(Connection._ids)
        self.temp_tables: dict[str, dict[str, LogicalType]] = {}
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.queries_executed = 0
        self.is_open = True
        #: Per-connector statement timeout, advertised by the source
        #: (enforced at the driver layer; see repro.faults.injector).
        self.timeout_s: float | None = getattr(data_source, "timeout_s", None)
        self._lock = threading.Lock()

    def execute(self, text: str) -> Table:
        if not self.is_open:
            raise ConnectionDiedError("connection is closed")
        try:
            result = self.driver.execute(text)
        except ConnectionDiedError:
            # The remote session is gone; make the death visible to the
            # pool so the member is dropped rather than re-idled.
            self.close()
            raise
        with self._lock:
            self.last_used = time.monotonic()
            self.queries_executed += 1
        return result

    def create_temp_table(self, name: str, table: Table) -> None:
        if not self.is_open:
            raise ConnectionDiedError("connection is closed")
        try:
            self.driver.create_temp_table(name, table)
        except ConnectionDiedError:
            self.close()
            raise
        with self._lock:
            self.temp_tables[name] = table.schema()
            self.last_used = time.monotonic()

    def has_temp_table(self, name: str) -> bool:
        return name in self.temp_tables

    def drop_temp_table(self, name: str) -> None:
        if name in self.temp_tables:
            self.driver.drop_temp_table(name)
            del self.temp_tables[name]

    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_used

    def close(self) -> None:
        if self.is_open:
            self.is_open = False
            self.driver.close()


class DataSource(Protocol):
    """Anything connections can be opened against."""

    name: str
    dialect: Capabilities
    query_language: str  # "sql" | "tql"

    def connect(self) -> Connection:  # pragma: no cover - protocol
        ...

    def schema_of(self, table: str) -> dict[str, LogicalType]:  # pragma: no cover
        ...


class _TdeDriver:
    """Driver speaking TQL against an in-process DataEngine."""

    def __init__(self, engine: DataEngine, temp_schema: str):
        self.engine = engine
        self.temp_schema = temp_schema
        self._temps: set[str] = set()

    def execute(self, text: str) -> Table:
        # Pass the query *text* through so the engine's plan cache can
        # key on it — repeat dashboard queries skip recompilation.
        return self.engine.query(self._rewrite_temp_names(text))

    def _rewrite_temp_names(self, text: str) -> str:
        for name in self._temps:
            text = text.replace(f'"{name}"', f'"{self.temp_schema}.{name}"')
        return text

    def create_temp_table(self, name: str, table: Table) -> None:
        self.engine.create_table(f"{self.temp_schema}.{name}", table, replace=True)
        self._temps.add(name)

    def drop_temp_table(self, name: str) -> None:
        if name in self._temps:
            self.engine.drop_table(f"{self.temp_schema}.{name}")
            self._temps.discard(name)

    def close(self) -> None:
        for name in list(self._temps):
            self.drop_temp_table(name)


class TdeDataSource:
    """A local TDE extract as a data source (paper 2, 4.1.4).

    Connections are cheap (in-process) and the engine itself supports
    parallel plans, so its profile differs sharply from single-threaded
    remote servers in the concurrency experiments.
    """

    query_language = "tql"

    def __init__(self, engine: DataEngine, name: str | None = None):
        from ..sql.dialects import ANSI

        self.engine = engine
        self.name = name or f"tde:{engine.database.name}"
        self.dialect = ANSI  # capability-complete; text is TQL, not SQL
        self._temp_counter = 0
        self._lock = threading.Lock()

    def connect(self) -> Connection:
        with self._lock:
            self._temp_counter += 1
            schema = f"tmp_{self._temp_counter}"
        return Connection(self, _TdeDriver(self.engine, schema))

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        return self.engine.table(table).schema()

    def table_names(self) -> list[str]:
        return [f"{s}.{t}" for s, t, _ in self.engine.database.iter_tables()]
