"""Connections to data sources: pooling, simulated servers, file sources.

Tableau "communicates with remote data sources by means of connections"
(paper 3.1); connections are pooled and reused, including the temporary
structures living in their remote sessions (3.5). Because the paper's 40+
commercial backends are unavailable, the remote side here is
:class:`~repro.connectors.simdb.SimulatedDatabase` — a small but real SQL
server with a worker pool, admission control, per-query parallelism and
temp tables, whose service times follow a calibrated cost model.
"""

from .connection import Connection, DataSource, TdeDataSource
from .pool import ConnectionPool
from .simdb import ServerProfile, SimulatedDatabase, SimDbDataSource
from .textfile import infer_table, parse_text_file, parse_workbook, write_text_file
from .shadow import ShadowExtractStore, FileDataSource, JetLikeDataSource

__all__ = [
    "Connection",
    "DataSource",
    "TdeDataSource",
    "ConnectionPool",
    "ServerProfile",
    "SimulatedDatabase",
    "SimDbDataSource",
    "parse_text_file",
    "parse_workbook",
    "write_text_file",
    "infer_table",
    "ShadowExtractStore",
    "FileDataSource",
    "JetLikeDataSource",
]
