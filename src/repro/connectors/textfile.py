"""In-house text/workbook parsers with metadata inference (paper 4.4).

"Tableau uses an in-house parser for parsing text files ... The text
parser accepts a schema file as additional input if one is available.
Otherwise, it attempts to discover the metadata by performing type and
column name inference."

The "Excel" workbook stand-in is a multi-sheet text format (binary .xlsx
parsing is out of scope offline): sheets are delimited by ``[sheet:Name]``
header lines, each followed by a CSV block.
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..datatypes import LogicalType
from ..errors import SourceError
from ..tde.storage.table import Table

#: Jet/Ace's infamous parse limit (paper 4.4: "a 4GB parsing limit").
JET_PARSE_LIMIT_BYTES = 4 * 1024**3

_TRUE_WORDS = {"true", "t", "yes", "y"}
_FALSE_WORDS = {"false", "f", "no", "n"}
_INFERENCE_SAMPLE_ROWS = 200


def write_text_file(
    path: str | Path,
    data: Mapping[str, Sequence[Any]],
    *,
    delimiter: str = ",",
) -> Path:
    """Write a CSV file from a column mapping (test/bench helper)."""
    path = Path(path)
    names = list(data)
    n_rows = len(data[names[0]]) if names else 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(names)
        for i in range(n_rows):
            writer.writerow(["" if data[n][i] is None else _cell(data[n][i]) for n in names])
    return path


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def parse_text_file(
    path: str | Path,
    *,
    schema: Mapping[str, LogicalType] | None = None,
    delimiter: str = ",",
    max_bytes: int | None = None,
) -> Table:
    """Parse a delimited text file into a storage table.

    ``schema`` plays the role of the optional schema file; without it the
    parser infers column types from a sample. ``max_bytes`` emulates
    legacy drivers' parse limits (pass :data:`JET_PARSE_LIMIT_BYTES`).
    """
    path = Path(path)
    if not path.exists():
        raise SourceError(f"no such file: {path}")
    size = path.stat().st_size
    if max_bytes is not None and size > max_bytes:
        raise SourceError(
            f"{path.name} is {size} bytes, beyond the {max_bytes}-byte parse limit"
        )
    with path.open(newline="") as fh:
        return _parse_stream(fh, schema=schema, delimiter=delimiter)


def parse_workbook(path: str | Path) -> dict[str, Table]:
    """Parse a multi-sheet workbook file into ``{sheet_name: Table}``."""
    path = Path(path)
    if not path.exists():
        raise SourceError(f"no such file: {path}")
    sheets: dict[str, Table] = {}
    current_name: str | None = None
    buffer: list[str] = []
    for line in path.read_text().splitlines():
        if line.startswith("[sheet:") and line.rstrip().endswith("]"):
            if current_name is not None:
                sheets[current_name] = _parse_stream(io.StringIO("\n".join(buffer)))
            current_name = line.strip()[len("[sheet:") : -1]
            buffer = []
        elif current_name is not None:
            buffer.append(line)
    if current_name is not None:
        sheets[current_name] = _parse_stream(io.StringIO("\n".join(buffer)))
    if not sheets:
        raise SourceError(f"{path.name} contains no [sheet:...] blocks")
    return sheets


def write_workbook(path: str | Path, sheets: Mapping[str, Mapping[str, Sequence[Any]]]) -> Path:
    """Write a multi-sheet workbook file (test/bench helper)."""
    path = Path(path)
    chunks = []
    for name, data in sheets.items():
        buf = io.StringIO()
        writer = csv.writer(buf)
        names = list(data)
        writer.writerow(names)
        n_rows = len(data[names[0]]) if names else 0
        for i in range(n_rows):
            writer.writerow(["" if data[n][i] is None else _cell(data[n][i]) for n in names])
        chunks.append(f"[sheet:{name}]\n{buf.getvalue()}")
    path.write_text("".join(chunks))
    return path


# ---------------------------------------------------------------------- #
# Parsing internals
# ---------------------------------------------------------------------- #
def _parse_stream(fh, *, schema=None, delimiter: str = ",") -> Table:
    reader = csv.reader(fh, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise SourceError("empty file: no header row") from None
    header = _normalize_names(header)
    rows = list(reader)
    if schema is not None:
        types = {name: schema[name] for name in header if name in schema}
        missing = [name for name in header if name not in types]
        if missing:
            raise SourceError(f"schema file missing columns: {missing}")
    else:
        types = {name: _infer_type(i, rows) for i, name in enumerate(header)}
    return infer_table(header, rows, types)


def _normalize_names(header: list[str]) -> list[str]:
    names: list[str] = []
    for i, raw in enumerate(header):
        name = raw.strip() or f"F{i + 1}"  # Tableau-style synthetic names
        base = name
        k = 2
        while name in names:
            name = f"{base}_{k}"
            k += 1
        names.append(name)
    return names


def infer_table(
    header: list[str], rows: list[list[str]], types: Mapping[str, LogicalType] | None = None
) -> Table:
    """Materialize parsed CSV cells into typed columns."""
    header = _normalize_names(header)
    if types is None:
        types = {name: _infer_type(i, rows) for i, name in enumerate(header)}
    data: dict[str, list[Any]] = {}
    for i, name in enumerate(header):
        ltype = types[name]
        column: list[Any] = []
        for row in rows:
            cell = row[i].strip() if i < len(row) else ""
            column.append(None if cell == "" else _convert(cell, ltype, name))
        data[name] = column
    return Table.from_pydict(data, types=dict(types))


def _infer_type(index: int, rows: list[list[str]]) -> LogicalType:
    sample = [
        row[index].strip()
        for row in rows[:_INFERENCE_SAMPLE_ROWS]
        if index < len(row) and row[index].strip() != ""
    ]
    if not sample:
        return LogicalType.STR
    for candidate, probe in (
        (LogicalType.INT, _is_int),
        (LogicalType.FLOAT, _is_float),
        (LogicalType.BOOL, _is_bool),
        (LogicalType.DATE, _is_date),
        (LogicalType.DATETIME, _is_datetime),
    ):
        if all(probe(cell) for cell in sample):
            return candidate
    return LogicalType.STR


def _is_int(cell: str) -> bool:
    try:
        int(cell)
        return True
    except ValueError:
        return False


def _is_float(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def _is_bool(cell: str) -> bool:
    return cell.lower() in _TRUE_WORDS | _FALSE_WORDS


def _is_date(cell: str) -> bool:
    try:
        _dt.date.fromisoformat(cell)
        return True
    except ValueError:
        return False


def _is_datetime(cell: str) -> bool:
    try:
        _dt.datetime.fromisoformat(cell)
        return True
    except ValueError:
        return False


def _convert(cell: str, ltype: LogicalType, column: str) -> Any:
    try:
        if ltype is LogicalType.INT:
            return int(cell)
        if ltype is LogicalType.FLOAT:
            return float(cell)
        if ltype is LogicalType.BOOL:
            return cell.lower() in _TRUE_WORDS
        if ltype is LogicalType.DATE:
            return _dt.date.fromisoformat(cell)
        if ltype is LogicalType.DATETIME:
            return _dt.datetime.fromisoformat(cell)
        return cell
    except ValueError as exc:
        raise SourceError(f"column {column!r}: cannot parse {cell!r} as {ltype.name}") from exc
