"""Logical plan → SQL text, per backend dialect.

The generator flattens operator stacks into as few SELECT blocks as
possible (remote query *quality* matters as much as quantity, paper 3.1)
and raises :class:`CapabilityError` when a plan needs something the
backend cannot do — the compiler reacts by hoisting that operation into
local post-processing or by externalizing state into temporary tables.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from ..datatypes import LogicalType
from ..errors import CapabilityError, SqlError
from ..expr.ast import AggExpr, Call, CaseWhen, Cast, ColumnRef, Expr, Literal
from ..tde.tql.plan import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
)
from .dialects import Capabilities

_SQL_TYPE_NAMES = {
    LogicalType.BOOL: "BOOLEAN",
    LogicalType.INT: "BIGINT",
    LogicalType.FLOAT: "DOUBLE",
    LogicalType.STR: "VARCHAR",
    LogicalType.DATE: "DATE",
    LogicalType.DATETIME: "TIMESTAMP",
}

SQL_TYPES_BY_NAME = {v: k for k, v in _SQL_TYPE_NAMES.items()}


def generate_sql(plan: LogicalPlan, dialect: Capabilities, catalog=None) -> str:
    """Render a logical plan as a single SQL statement.

    ``catalog`` (anything with ``schema_of``) is required when the plan
    contains joins: the generator expands explicit column lists so the
    right side's join keys are not duplicated in the output.
    """
    gen = _Generator(dialect, catalog)
    return gen.render(gen.block(plan))


@dataclass
class _Block:
    """One SELECT block being assembled."""

    from_clause: str
    items: list[tuple[str, str]] | None = None  # None means SELECT *
    where: list[str] = field(default_factory=list)
    groupby: list[str] = field(default_factory=list)
    is_aggregate: bool = False
    order: list[str] = field(default_factory=list)
    limit: int | None = None

    @property
    def shaped(self) -> bool:
        """Whether further operators must wrap this block in a subquery."""
        return self.is_aggregate or self.order != [] or self.limit is not None

    @property
    def projected(self) -> bool:
        return self.items is not None


class _Generator:
    def __init__(self, dialect: Capabilities, catalog=None):
        self.dialect = dialect
        self.catalog = catalog
        self._alias_counter = 0

    # ------------------------------------------------------------------ #
    # Blocks
    # ------------------------------------------------------------------ #
    def _alias(self) -> str:
        self._alias_counter += 1
        return f"t{self._alias_counter}"

    def _wrap(self, block: _Block) -> _Block:
        if not self.dialect.supports_subqueries:
            raise CapabilityError("backend does not support subqueries", "subqueries")
        return _Block(from_clause=f"({self.render(block)}) AS {self._alias()}")

    def block(self, plan: LogicalPlan) -> _Block:
        if isinstance(plan, TableScan):
            schema_name, table_name = plan.table.split(".", 1) if "." in plan.table else (None, plan.table)
            quoted = (
                f"{self.dialect.quote(schema_name)}.{self.dialect.quote(table_name)}"
                if schema_name
                else self.dialect.quote(table_name)
            )
            return _Block(from_clause=quoted)
        if isinstance(plan, Select):
            block = self.block(plan.child)
            if block.shaped:
                block = self._wrap(block)
            block.where.append(self.expr(plan.predicate))
            return block
        if isinstance(plan, Project):
            block = self.block(plan.child)
            if block.shaped or block.projected:
                block = self._wrap(block)
            block.items = [(name, self.expr(e)) for name, e in plan.items]
            return block
        if isinstance(plan, Aggregate):
            block = self.block(plan.child)
            if block.shaped or block.projected:
                block = self._wrap(block)
            items = [(g, self.dialect.quote(g)) for g in plan.groupby]
            items += [(name, self.agg(a)) for name, a in plan.aggs]
            block.items = items
            block.groupby = [self.dialect.quote(g) for g in plan.groupby]
            block.is_aggregate = True
            return block
        if isinstance(plan, Distinct):
            return self.block(Aggregate(plan.child, plan.columns, ()))
        if isinstance(plan, Order):
            block = self.block(plan.child)
            if block.limit is not None or block.order:
                block = self._wrap(block)
            block.order = [
                f"{self.dialect.quote(k)} {'ASC' if asc else 'DESC'}" for k, asc in plan.keys
            ]
            return block
        if isinstance(plan, TopN):
            if not self.dialect.supports_limit:
                raise CapabilityError("backend does not support LIMIT", "limit")
            block = self.block(plan.child)
            if block.limit is not None or block.order:
                block = self._wrap(block)
            block.order = [
                f"{self.dialect.quote(k)} {'ASC' if asc else 'DESC'}" for k, asc in plan.keys
            ]
            block.limit = plan.n
            return block
        if isinstance(plan, Limit):
            if not self.dialect.supports_limit:
                raise CapabilityError("backend does not support LIMIT", "limit")
            block = self.block(plan.child)
            if block.limit is not None:
                block = self._wrap(block)
            block.limit = plan.n
            return block
        if isinstance(plan, Join):
            return self._join_block(plan)
        raise SqlError(f"cannot generate SQL for {type(plan).__name__}")

    def _join_block(self, plan: Join) -> _Block:
        if self.catalog is None:
            raise SqlError("generating SQL for joins requires a catalog")
        from ..tde.tql.binder import bind

        left_schema = bind(plan.left, self.catalog)
        right_schema = bind(plan.right, self.catalog)
        left = self.block(plan.left)
        right = self.block(plan.right)
        left_alias = self._alias()
        right_alias = self._alias()
        left_unit = self._as_unit(left, left_alias)
        right_unit = self._as_unit(right, right_alias)
        kind = "INNER JOIN" if plan.kind == "inner" else "LEFT JOIN"
        on = " AND ".join(
            f"{left_alias}.{self.dialect.quote(l)} = {right_alias}.{self.dialect.quote(r)}"
            for l, r in plan.conditions
        )
        right_keys = {r for _, r in plan.conditions}
        items = [
            (name, f"{left_alias}.{self.dialect.quote(name)}") for name in left_schema
        ] + [
            (name, f"{right_alias}.{self.dialect.quote(name)}")
            for name in right_schema
            if name not in right_keys
        ]
        return _Block(from_clause=f"{left_unit} {kind} {right_unit} ON {on}", items=items)

    def _as_unit(self, block: _Block, alias: str) -> str:
        if (
            not block.where
            and not block.shaped
            and not block.projected
            and not block.from_clause.startswith("(")
        ):
            return f"{block.from_clause} AS {alias}"
        if not self.dialect.supports_subqueries:
            raise CapabilityError("backend does not support subqueries", "subqueries")
        return f"({self.render(block)}) AS {alias}"

    def render(self, block: _Block) -> str:
        if block.items is None:
            select = "*"
        else:
            select = ", ".join(
                sql if sql == self.dialect.quote(name) else f"{sql} AS {self.dialect.quote(name)}"
                for name, sql in block.items
            )
        parts = [f"SELECT {select}", f"FROM {block.from_clause}"]
        if block.where:
            parts.append("WHERE " + " AND ".join(block.where))
        if block.groupby:
            parts.append("GROUP BY " + ", ".join(block.groupby))
        elif block.is_aggregate and block.items is not None:
            pass  # global aggregate: no GROUP BY clause
        if block.order:
            parts.append("ORDER BY " + ", ".join(block.order))
        if block.limit is not None:
            parts.append(f"LIMIT {block.limit}")
        return " ".join(parts)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    _INFIX = {"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">="}

    def expr(self, e: Expr) -> str:
        if isinstance(e, ColumnRef):
            return self.dialect.quote(e.name)
        if isinstance(e, Literal):
            return self.literal(e)
        if isinstance(e, Cast):
            return f"CAST({self.expr(e.arg)} AS {_SQL_TYPE_NAMES[e.to]})"
        if isinstance(e, CaseWhen):
            parts = ["CASE"]
            for cond, value in e.branches:
                parts.append(f"WHEN {self.expr(cond)} THEN {self.expr(value)}")
            parts.append(f"ELSE {self.expr(e.otherwise)} END")
            return " ".join(parts)
        if isinstance(e, Call):
            return self.call(e)
        raise SqlError(f"cannot render expression {e!r}")

    def call(self, e: Call) -> str:
        func = e.func
        if not self.dialect.supports_function(func):
            raise CapabilityError(
                f"backend {self.dialect.name} lacks function {func!r}", func
            )
        if func in self._INFIX:
            return f"({self.expr(e.args[0])} {func} {self.expr(e.args[1])})"
        if func == "and":
            return f"({self.expr(e.args[0])} AND {self.expr(e.args[1])})"
        if func == "or":
            return f"({self.expr(e.args[0])} OR {self.expr(e.args[1])})"
        if func == "not":
            return f"(NOT {self.expr(e.args[0])})"
        if func == "neg":
            return f"(- {self.expr(e.args[0])})"
        if func == "isnull":
            return f"({self.expr(e.args[0])} IS NULL)"
        if func == "ifnull":
            return f"COALESCE({self.expr(e.args[0])}, {self.expr(e.args[1])})"
        if func == "in":
            lst = e.args[1]
            if not isinstance(lst, Literal) or not isinstance(lst.value, tuple):
                raise SqlError("IN requires a literal list")
            limit = self.dialect.max_in_list
            if limit is not None and len(lst.value) > limit:
                raise CapabilityError(
                    f"IN-list of {len(lst.value)} exceeds backend limit {limit};"
                    " externalize to a temporary table",
                    "in_list",
                )
            rendered = ", ".join(self.literal(Literal(v)) for v in lst.value)
            if not lst.value:
                return "(1 = 0)"
            return f"({self.expr(e.args[0])} IN ({rendered}))"
        native = self.dialect.native_name(func).upper()
        args = ", ".join(self.expr(a) for a in e.args)
        return f"{native}({args})"

    def agg(self, a: AggExpr) -> str:
        if a.func == "count" and a.arg is None:
            return "COUNT(*)"
        inner = self.expr(a.arg)
        if a.func == "count_distinct":
            return f"COUNT(DISTINCT {inner})"
        return f"{a.func.upper()}({inner})"

    def literal(self, lit: Literal) -> str:
        v = lit.value
        if v is None:
            return "NULL"
        if isinstance(v, bool):
            return "TRUE" if v else "FALSE"
        if isinstance(v, (int, float)):
            return repr(v)
        if isinstance(v, _dt.datetime):
            return f"TIMESTAMP '{v.isoformat(sep=' ')}'"
        if isinstance(v, _dt.date):
            return f"DATE '{v.isoformat()}'"
        if isinstance(v, str):
            return "'" + v.replace("'", "''") + "'"
        raise SqlError(f"cannot render literal {v!r}")
