"""SQL text → logical plan, for the subset the generator emits.

The simulated backends are real (if small) SQL servers: they receive
text, tokenize, parse and execute it. Statements:

    SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT]
    CREATE TEMP TABLE name AS SELECT ...
    CREATE TEMP TABLE name (col TYPE, ...)
    INSERT INTO name VALUES (...), (...)
    DROP TABLE name

Column references may be alias-qualified (``t1."delay"``); the qualifier
is discarded because the pipeline keeps column names globally unique
within a query (the generator guarantees it).
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Any

from ..datatypes import LogicalType
from ..errors import SqlParseError
from ..expr.ast import AggExpr, Call, CaseWhen, Cast, ColumnRef, Expr, Literal
from ..tde.tql.plan import (
    Aggregate,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
)
from .generator import SQL_TYPES_BY_NAME


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SelectStatement:
    plan: LogicalPlan


@dataclass(frozen=True)
class CreateTempTable:
    name: str
    plan: LogicalPlan | None = None
    columns: tuple[tuple[str, LogicalType], ...] | None = None


@dataclass(frozen=True)
class InsertValues:
    name: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class DropTable:
    name: str


Statement = SelectStatement | CreateTempTable | InsertValues | DropTable


def parse_sql(text: str) -> LogicalPlan:
    """Parse a single SELECT statement into a logical plan."""
    stmt = parse_statement(text)
    if not isinstance(stmt, SelectStatement):
        raise SqlParseError("expected a SELECT statement")
    return stmt.plan


def parse_statement(text: str) -> Statement:
    """Parse any supported statement (a trailing semicolon is allowed)."""
    parser = _Parser(_tokenize(text.strip().rstrip(";")))
    stmt = parser.statement()
    parser.expect_end()
    return stmt


# ---------------------------------------------------------------------- #
# Lexer
# ---------------------------------------------------------------------- #
_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<qident>"(?:[^"]|"")*"|`(?:[^`]|``)*`) |
        (?P<string>'(?:[^']|'')*') |
        (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?) |
        (?P<punct><=|>=|<>|=|<|>|\(|\)|,|\.|\*|\+|-|/|%) |
        (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos:].strip() == "":
            break
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise SqlParseError(f"bad SQL character {text[pos]!r} at {pos}")
        pos = m.end()
        kind = m.lastgroup
        tokens.append((kind, m.group(kind)))
    return tokens


_AGG_FUNCS = {"SUM": "sum", "MIN": "min", "MAX": "max", "AVG": "avg", "COUNT": "count"}
_FUNC_RENAMES_BACK = {
    "COALESCE": "ifnull",
    "ISNULL_FN": "ifnull",
    "LEN": "len",
}


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise SqlParseError("unexpected end of SQL")
        self.pos += 1
        return tok

    def at_word(self, *words: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "word" and tok[1].upper() in words

    def eat_word(self, *words: str) -> bool:
        if self.at_word(*words):
            self.pos += 1
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.eat_word(word):
            raise SqlParseError(f"expected {word}, got {self.peek()}")

    def at_punct(self, p: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "punct" and tok[1] == p

    def eat_punct(self, p: str) -> bool:
        if self.at_punct(p):
            self.pos += 1
            return True
        return False

    def expect_punct(self, p: str) -> None:
        if not self.eat_punct(p):
            raise SqlParseError(f"expected {p!r}, got {self.peek()}")

    def expect_end(self) -> None:
        if self.peek() is not None:
            raise SqlParseError(f"trailing tokens: {self.peek()}")

    def identifier(self) -> str:
        kind, value = self.next()
        if kind == "qident":
            quote = value[0]
            return value[1:-1].replace(quote * 2, quote)
        if kind == "word":
            return value
        raise SqlParseError(f"expected identifier, got {value!r}")

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def statement(self) -> Statement:
        if self.at_word("SELECT"):
            return SelectStatement(self.select())
        if self.eat_word("CREATE"):
            if not (self.eat_word("TEMP") or self.eat_word("TEMPORARY")):
                raise SqlParseError("only CREATE TEMP TABLE is supported")
            self.expect_word("TABLE")
            name = self._qualified_name()
            if self.eat_word("AS"):
                return CreateTempTable(name, plan=self.select())
            self.expect_punct("(")
            columns: list[tuple[str, LogicalType]] = []
            while True:
                col = self.identifier()
                type_word = self.identifier().upper()
                if type_word not in SQL_TYPES_BY_NAME:
                    raise SqlParseError(f"unknown SQL type {type_word}")
                columns.append((col, SQL_TYPES_BY_NAME[type_word]))
                if not self.eat_punct(","):
                    break
            self.expect_punct(")")
            return CreateTempTable(name, columns=tuple(columns))
        if self.eat_word("INSERT"):
            self.expect_word("INTO")
            name = self._qualified_name()
            self.expect_word("VALUES")
            rows = []
            while True:
                self.expect_punct("(")
                row = []
                while True:
                    row.append(self._literal_value())
                    if not self.eat_punct(","):
                        break
                self.expect_punct(")")
                rows.append(tuple(row))
                if not self.eat_punct(","):
                    break
            return InsertValues(name, tuple(rows))
        if self.eat_word("DROP"):
            self.expect_word("TABLE")
            return DropTable(self._qualified_name())
        raise SqlParseError(f"unsupported statement start: {self.peek()}")

    def _qualified_name(self) -> str:
        name = self.identifier()
        while self.eat_punct("."):
            name += "." + self.identifier()
        return name

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def select(self) -> LogicalPlan:
        self.expect_word("SELECT")
        star = self.eat_punct("*")
        items: list[tuple[str, Expr | AggExpr]] = []
        if not star:
            while True:
                item = self._select_item()
                items.append(item)
                if not self.eat_punct(","):
                    break
        self.expect_word("FROM")
        plan = self._from_item()
        if self.eat_word("WHERE"):
            plan = Select(plan, self.expr())
        groupby: list[str] = []
        explicit_group = False
        if self.eat_word("GROUP"):
            self.expect_word("BY")
            explicit_group = True
            while True:
                groupby.append(self._column_name())
                if not self.eat_punct(","):
                    break
        has_aggs = any(isinstance(e, AggExpr) for _n, e in items)
        if has_aggs or explicit_group:
            plan = self._build_aggregate(plan, items, groupby)
        elif not star:
            plan = Project(plan, [(n, e) for n, e in items])
        if self.eat_word("HAVING"):
            plan = Select(plan, self.expr())
        keys: list[tuple[str, bool]] = []
        if self.eat_word("ORDER"):
            self.expect_word("BY")
            while True:
                col = self._column_name()
                asc = True
                if self.eat_word("DESC"):
                    asc = False
                else:
                    self.eat_word("ASC")
                keys.append((col, asc))
                if not self.eat_punct(","):
                    break
        if self.eat_word("LIMIT"):
            kind, value = self.next()
            if kind != "number":
                raise SqlParseError("LIMIT requires a number")
            n = int(value)
            return TopN(plan, n, keys) if keys else Limit(plan, n)
        if keys:
            return Order(plan, keys)
        return plan

    def _build_aggregate(self, plan, items, groupby) -> LogicalPlan:
        group_names: list[str] = []
        aggs: list[tuple[str, AggExpr]] = []
        group_set = set(groupby)
        for name, e in items:
            if isinstance(e, AggExpr):
                aggs.append((name, e))
            elif isinstance(e, ColumnRef) and (not group_set or e.name in group_set):
                group_names.append(e.name)
            else:
                raise SqlParseError(
                    f"non-aggregate select item {name!r} must be a grouped column"
                )
        if group_set and set(group_names) != group_set:
            # GROUP BY columns not all projected; honor the GROUP BY list.
            group_names = list(groupby)
        return Aggregate(plan, group_names, aggs)

    def _select_item(self) -> tuple[str, Expr | AggExpr]:
        expr = self._expr_or_agg()
        if self.eat_word("AS"):
            return self.identifier(), expr
        tok = self.peek()
        if tok is not None and tok[0] in ("qident",) :
            return self.identifier(), expr
        if isinstance(expr, ColumnRef):
            return expr.name, expr
        raise SqlParseError("select item needs an alias")

    def _column_name(self) -> str:
        name = self.identifier()
        while self.eat_punct("."):
            name = self.identifier()
        return name

    # ------------------------------------------------------------------ #
    # FROM
    # ------------------------------------------------------------------ #
    def _from_item(self) -> LogicalPlan:
        plan = self._from_unit()
        while True:
            if self.eat_word("INNER"):
                self.expect_word("JOIN")
                kind = "inner"
            elif self.eat_word("LEFT"):
                self.eat_word("OUTER")
                self.expect_word("JOIN")
                kind = "left"
            elif self.at_word("JOIN"):
                self.expect_word("JOIN")
                kind = "inner"
            else:
                return plan
            right = self._from_unit()
            self.expect_word("ON")
            conditions = [self._join_condition()]
            while self.eat_word("AND"):
                conditions.append(self._join_condition())
            plan = Join(kind, conditions, plan, right)

    def _from_unit(self) -> LogicalPlan:
        if self.eat_punct("("):
            inner = self.select()
            self.expect_punct(")")
            self.eat_word("AS")
            if self.peek() is not None and self.peek()[0] in ("word", "qident"):
                self.identifier()  # alias, ignored
            return inner
        name = self._qualified_name()
        if self.eat_word("AS"):
            self.identifier()
        elif self.peek() is not None and self.peek()[0] == "word" and not self.at_word(
            "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "INNER", "LEFT", "JOIN", "ON"
        ):
            self.identifier()  # bare alias
        return TableScan(name)

    def _join_condition(self) -> tuple[str, str]:
        left = self._column_name()
        self.expect_punct("=")
        right = self._column_name()
        return left, right

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _expr_or_agg(self) -> Expr | AggExpr:
        tok = self.peek()
        if tok is not None and tok[0] == "word" and tok[1].upper() in _AGG_FUNCS:
            save = self.pos
            word = tok[1].upper()
            self.pos += 1
            if self.eat_punct("("):
                if word == "COUNT" and self.eat_punct("*"):
                    self.expect_punct(")")
                    return AggExpr("count", None)
                if self.eat_word("DISTINCT"):
                    arg = self.expr()
                    self.expect_punct(")")
                    if word != "COUNT":
                        raise SqlParseError("DISTINCT only supported under COUNT")
                    return AggExpr("count_distinct", arg)
                arg = self.expr()
                self.expect_punct(")")
                return AggExpr(_AGG_FUNCS[word], arg)
            self.pos = save
        return self.expr()

    def expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.eat_word("OR"):
            left = Call("or", (left, self._and()))
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self.eat_word("AND"):
            left = Call("and", (left, self._not()))
        return left

    def _not(self) -> Expr:
        if self.eat_word("NOT"):
            return Call("not", (self._not(),))
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        tok = self.peek()
        if tok is not None and tok[0] == "punct" and tok[1] in ("=", "<>", "<", "<=", ">", ">="):
            op = self.next()[1]
            return Call(op, (left, self._additive()))
        if self.eat_word("IS"):
            negate = self.eat_word("NOT")
            self.expect_word("NULL")
            out = Call("isnull", (left,))
            return Call("not", (out,)) if negate else out
        negate = False
        if self.at_word("NOT"):
            save = self.pos
            self.pos += 1
            if self.at_word("IN"):
                negate = True
            else:
                self.pos = save
        if self.eat_word("IN"):
            self.expect_punct("(")
            values = []
            if not self.at_punct(")"):
                while True:
                    values.append(self._literal_value())
                    if not self.eat_punct(","):
                        break
            self.expect_punct(")")
            out = Call("in", (left, Literal(tuple(values))))
            return Call("not", (out,)) if negate else out
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self.eat_punct("+"):
                left = Call("+", (left, self._multiplicative()))
            elif self.eat_punct("-"):
                left = Call("-", (left, self._multiplicative()))
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self.eat_punct("*"):
                left = Call("*", (left, self._unary()))
            elif self.eat_punct("/"):
                left = Call("/", (left, self._unary()))
            elif self.eat_punct("%"):
                left = Call("%", (left, self._unary()))
            else:
                return left

    def _unary(self) -> Expr:
        if self.eat_punct("-"):
            inner = self._unary()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Call("neg", (inner,))
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.peek()
        if tok is None:
            raise SqlParseError("unexpected end of expression")
        kind, value = tok
        if kind == "number":
            self.next()
            return Literal(float(value) if any(c in value for c in ".eE") else int(value))
        if kind == "string":
            self.next()
            return Literal(value[1:-1].replace("''", "'"))
        if self.eat_punct("("):
            inner = self.expr()
            self.expect_punct(")")
            return inner
        if kind == "qident":
            return self._qualified_ref()
        if kind == "word":
            return self._word_primary(value)
        raise SqlParseError(f"unexpected token {value!r} in expression")

    def _qualified_ref(self) -> Expr:
        name = self.identifier()
        while self.eat_punct("."):
            name = self.identifier()
        return ColumnRef(name)

    def _word_primary(self, value: str) -> Expr:
        upper = value.upper()
        if upper == "TRUE":
            self.next()
            return Literal(True)
        if upper == "FALSE":
            self.next()
            return Literal(False)
        if upper == "NULL":
            self.next()
            return Literal(None, LogicalType.INT)
        if upper == "DATE":
            self.next()
            kind, raw = self.next()
            if kind != "string":
                raise SqlParseError("DATE literal needs a quoted string")
            return Literal(_dt.date.fromisoformat(raw[1:-1]))
        if upper == "TIMESTAMP":
            self.next()
            kind, raw = self.next()
            if kind != "string":
                raise SqlParseError("TIMESTAMP literal needs a quoted string")
            return Literal(_dt.datetime.fromisoformat(raw[1:-1]))
        if upper == "CASE":
            return self._case()
        if upper == "CAST":
            self.next()
            self.expect_punct("(")
            inner = self.expr()
            self.expect_word("AS")
            type_word = self.identifier().upper()
            if type_word not in SQL_TYPES_BY_NAME:
                raise SqlParseError(f"unknown SQL type {type_word}")
            self.expect_punct(")")
            return Cast(inner, SQL_TYPES_BY_NAME[type_word])
        # Function call or bare/qualified column.
        save = self.pos
        self.next()
        if self.eat_punct("("):
            func = _FUNC_RENAMES_BACK.get(upper, value.lower())
            args = []
            if not self.at_punct(")"):
                while True:
                    args.append(self.expr())
                    if not self.eat_punct(","):
                        break
            self.expect_punct(")")
            return Call(func, tuple(args))
        self.pos = save
        return self._qualified_ref()

    def _case(self) -> Expr:
        self.expect_word("CASE")
        branches = []
        while self.eat_word("WHEN"):
            cond = self.expr()
            self.expect_word("THEN")
            branches.append((cond, self.expr()))
        otherwise: Expr = Literal(None, LogicalType.INT)
        if self.eat_word("ELSE"):
            otherwise = self.expr()
        self.expect_word("END")
        return CaseWhen(tuple(branches), otherwise)

    # ------------------------------------------------------------------ #
    # Literals for VALUES / IN
    # ------------------------------------------------------------------ #
    def _literal_value(self) -> Any:
        expr = self._unary()
        if isinstance(expr, Literal) and not isinstance(expr.value, tuple):
            return expr.value
        raise SqlParseError("expected a literal value")
