"""SQL front end for the simulated remote databases.

Tableau compiles its internal queries "into textual queries in appropriate
dialects" (paper 3.1). This package provides both directions:

* :func:`generate_sql` — logical plan → SQL text in a given dialect,
  respecting per-backend capabilities (missing functions raise
  :class:`~repro.errors.CapabilityError`, which the query compiler turns
  into local post-processing);
* :func:`parse_sql` — SQL text → logical plan, used by the simulated
  servers to execute what they receive (and by tests to verify the
  round trip).
"""

from .dialects import Capabilities, ANSI, QUIRKDB, SQLSERVERISH, DIALECTS
from .generator import generate_sql
from .parser import parse_sql

__all__ = [
    "Capabilities",
    "ANSI",
    "QUIRKDB",
    "SQLSERVERISH",
    "DIALECTS",
    "generate_sql",
    "parse_sql",
]
