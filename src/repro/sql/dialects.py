"""Backend dialect and capability descriptors.

"The query compiler incorporates information about cardinalities, domains,
and overall capabilities of the data source, such as support for
subqueries, temporary table creation and indexing, or insertion over
selection." (paper 3.1) — plus: "out of the wide spectrum of scalar and
aggregate functions available in the system, the native implementations
might vary a lot ... As a result, some operations may need to be locally
applied in the post-processing stage."

Each simulated backend carries one of these descriptors; the query
compiler consults it to decide what it can push down, when to externalize
big IN-lists into temporary tables, and which calculations must run
locally after the rows come back.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Capabilities:
    """What a backend can do and how its SQL is spelled."""

    name: str
    identifier_quote: str = '"'
    supports_subqueries: bool = True
    supports_temp_tables: bool = True
    supports_limit: bool = True
    #: IN-lists longer than this should be externalized to a temp table
    #: ("externalization of large enumerations with temporary secondary
    #: structures", paper 3.1). None disables the limit.
    max_in_list: int | None = None
    #: Scalar functions the backend evaluates natively. Anything else must
    #: be post-processed locally by the client.
    supported_functions: frozenset[str] = frozenset()
    #: Backend-specific function spellings.
    function_renames: dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def quote(self, identifier: str) -> str:
        q = self.identifier_quote
        return f"{q}{identifier.replace(q, q + q)}{q}"

    def supports_function(self, name: str) -> bool:
        return name in self.supported_functions

    def native_name(self, name: str) -> str:
        return self.function_renames.get(name, name)


_COMMON_FUNCTIONS = frozenset(
    {
        "+", "-", "*", "/", "%", "neg",
        "=", "<>", "<", "<=", ">", ">=",
        "and", "or", "not", "isnull", "ifnull", "in",
        "abs", "round", "floor", "ceil",
        "year", "month", "day", "hour", "weekday",
        "upper", "lower", "len", "substr", "concat", "trim",
        "contains", "startswith", "endswith",
        "sqrt", "ln", "exp", "pow",
    }
)

#: A well-behaved ANSI-ish backend: everything supported.
ANSI = Capabilities(
    name="ansi",
    supported_functions=_COMMON_FUNCTIONS,
)

#: A capable commercial engine with its own spellings (SQL Server-like:
#: parallel plans, MARS, temp tables — the execution side lives in the
#: simulated server profile).
SQLSERVERISH = Capabilities(
    name="sqlserverish",
    identifier_quote='"',
    supported_functions=_COMMON_FUNCTIONS,
    function_renames={"len": "LEN", "ifnull": "ISNULL_FN"},
    max_in_list=2_000,
)

#: A quirky, limited backend: no subqueries from the client's viewpoint,
#: tiny IN-lists, missing string/date functions — exercising the local
#: post-processing path of paper 3.1.
QUIRKDB = Capabilities(
    name="quirkdb",
    identifier_quote="`",
    supports_temp_tables=False,
    supports_limit=False,
    max_in_list=16,
    supported_functions=_COMMON_FUNCTIONS
    - {"contains", "startswith", "endswith", "weekday", "substr", "pow", "ln", "exp"},
)

DIALECTS = {d.name: d for d in (ANSI, SQLSERVERISH, QUIRKDB)}
