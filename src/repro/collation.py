"""Column-level string collations.

The paper stresses that, unlike most analytical engines, the TDE supports
*column-level collated strings* (section 4.1.1) so that extracts behave
identically to live connections. We model a collation as a named mapping
from a string to a *sort key*: equality, hashing, grouping and ordering of
collated columns all operate on sort keys rather than raw code points.

Three collations cover the behaviours the paper relies on:

* ``BINARY``             — raw code-point comparison (the default)
* ``CASE_INSENSITIVE``   — casefolded comparison
* ``ACCENT_INSENSITIVE`` — casefolded + combining marks stripped (NFKD)

Collation mismatches matter for the intelligent cache: results computed
under one collation cannot be post-processed locally to answer a query that
groups/filters under another (paper 3.2: "certain operations cannot be
performed locally, in particular ... collation conflicts").
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Collation:
    """A named string collation.

    Attributes:
        name: stable identifier, used in cache keys and metadata.
        key: maps a raw string to its sort key. Two strings are equal under
            the collation iff their sort keys are equal; ordering likewise.
    """

    name: str
    key: Callable[[str], str] = field(compare=False)

    def sort_keys(self, values: np.ndarray) -> np.ndarray:
        """Vectorized sort-key computation over an object array of str."""
        if self is BINARY:
            return values
        out = np.empty(len(values), dtype=object)
        key = self.key
        for i, v in enumerate(values):
            out[i] = key(v)
        return out

    def eq(self, a: str, b: str) -> bool:
        return self.key(a) == self.key(b)

    def lt(self, a: str, b: str) -> bool:
        return self.key(a) < self.key(b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Collation({self.name!r})"


def _identity(s: str) -> str:
    return s


def _casefold(s: str) -> str:
    return s.casefold()


def _strip_accents(s: str) -> str:
    decomposed = unicodedata.normalize("NFKD", s.casefold())
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


BINARY = Collation("binary", _identity)
CASE_INSENSITIVE = Collation("ci", _casefold)
ACCENT_INSENSITIVE = Collation("ai_ci", _strip_accents)

_REGISTRY = {c.name: c for c in (BINARY, CASE_INSENSITIVE, ACCENT_INSENSITIVE)}


def get_collation(name: str) -> Collation:
    """Look up a collation by name; raises ``KeyError`` for unknown names."""
    return _REGISTRY[name]


def compatible(a: Collation, b: Collation) -> bool:
    """Whether values compared under ``a`` can be re-compared under ``b``.

    Used by the intelligent cache's matching logic: a cached result is only
    locally post-processable if all string comparisons it would need use the
    same collation the original query used.
    """
    return a.name == b.name
