"""Dashboard structure: zones and the actions linking them."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import WorkloadError
from ..expr.ast import AggExpr
from ..queries.spec import Filter, QuerySpec


@dataclass(frozen=True)
class Zone:
    """One dashboard zone backed by a query.

    ``kind`` is cosmetic metadata ("map", "bar", "filter", "text", ...);
    zones of kind ``"filter"`` are quick filters — their query is the
    domain query for their field, and user selections on them act like
    filter actions on every other zone (paper 3.2's Fig. 1 discussion).
    Zones with ``kind="legend"`` have no query at all.
    """

    name: str
    kind: str = "chart"
    dimensions: tuple[str, ...] = ()
    measures: tuple[tuple[str, AggExpr], ...] = ()
    filters: tuple[Filter, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def __init__(
        self,
        name: str,
        kind: str = "chart",
        dimensions=(),
        measures=(),
        filters=(),
        order_by=(),
        limit: int | None = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "measures", tuple((n, a) for n, a in measures))
        object.__setattr__(self, "filters", tuple(filters))
        object.__setattr__(self, "order_by", tuple((k, bool(a)) for k, a in order_by))
        object.__setattr__(self, "limit", limit)

    @property
    def has_query(self) -> bool:
        return self.kind != "legend" and (bool(self.dimensions) or bool(self.measures))

    def spec(self, datasource: str, extra_filters: tuple[Filter, ...]) -> QuerySpec:
        return QuerySpec(
            datasource,
            self.dimensions,
            self.measures,
            self.filters + tuple(extra_filters),
            self.order_by,
            self.limit,
        )


@dataclass(frozen=True)
class FilterAction:
    """An interactive filter action (paper Figure 2).

    Selecting marks in ``source`` filters every zone in ``targets`` on
    ``field`` by the selected values.
    """

    source: str
    field: str
    targets: tuple[str, ...]

    def __init__(self, source: str, field: str, targets):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "targets", tuple(targets))


@dataclass
class Dashboard:
    """A named collection of zones plus the actions between them."""

    name: str
    datasource: str
    zones: dict[str, Zone] = field(default_factory=dict)
    actions: list[FilterAction] = field(default_factory=list)

    def add_zone(self, zone: Zone) -> "Dashboard":
        if zone.name in self.zones:
            raise WorkloadError(f"duplicate zone {zone.name!r}")
        self.zones[zone.name] = zone
        return self

    def add_action(self, action: FilterAction) -> "Dashboard":
        if action.source not in self.zones:
            raise WorkloadError(f"action source zone {action.source!r} missing")
        for target in action.targets:
            if target not in self.zones:
                raise WorkloadError(f"action target zone {target!r} missing")
            if target == action.source:
                raise WorkloadError("an action cannot target its own source")
        self.actions.append(action)
        return self

    def add_quick_filter(self, name: str, field: str, *, targets=None) -> "Dashboard":
        """Add a quick-filter zone whose selection filters other zones.

        The zone's own query is the field's domain query — sent only once,
        since "further interactions might change the selection but not the
        domains" (paper 3.2).
        """
        zone = Zone(name, kind="filter", dimensions=(field,))
        self.add_zone(zone)
        if targets is None:
            targets = [z for z in self.zones if z != name and self.zones[z].kind != "filter"]
        self.add_action(FilterAction(name, field, targets))
        return self

    def queryable_zones(self) -> list[Zone]:
        return [z for z in self.zones.values() if z.has_query]

    def actions_from(self, zone_name: str) -> list[FilterAction]:
        return [a for a in self.actions if a.source == zone_name]

    def actions_onto(self, zone_name: str) -> list[FilterAction]:
        return [a for a in self.actions if zone_name in a.targets]
