"""Dashboards: zones, interactive filter actions, iterative rendering.

"A dashboard is a collection of zones organized according to a certain
layout. ... One defines the behavior of individual zones first and then
specifies dependencies between them." (paper 3) Rendering may take several
iterations because actions cascade (3.3, Figure 2).
"""

from .model import Dashboard, FilterAction, Zone
from .render import DashboardSession, RenderResult

__all__ = ["Dashboard", "Zone", "FilterAction", "DashboardSession", "RenderResult"]
