"""Iterative dashboard rendering (paper 3.3).

"Due to dependencies between zones, rendering of a dashboard might require
several iterations to complete." Each iteration collects the zones whose
effective filters changed, forms their query batch, runs it through the
pipeline, then *validates selections*: a selected mark that vanished from
its source zone's new result is dropped, which may trigger another
iteration — exactly the HNL-OGG example of Figure 2, where selecting a
new market eliminates the stale AA carrier selection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..core.pipeline import BatchResult, QueryPipeline
from ..errors import WorkloadError
from ..obs.ledger import RequestLedger
from ..queries.spec import CategoricalFilter, Filter, QuerySpec
from ..tde.storage.table import Table
from .model import Dashboard, Zone

MAX_ITERATIONS = 10


@dataclass
class RenderResult:
    """Outcome of rendering one dashboard state.

    Degradation surfaces here per zone: ``stale_zones`` are zones served
    from the last-known-good store (flagged stale, not failed), and
    ``zone_errors`` maps zones that could not be answered at all to an
    error description — the rest of the dashboard still renders.
    """

    zone_tables: dict[str, Table]
    iterations: int
    batches: list[BatchResult]
    dropped_selections: list[tuple[str, Any]] = field(default_factory=list)
    stale_zones: set[str] = field(default_factory=set)
    zone_errors: dict[str, str] = field(default_factory=dict)
    #: zone -> per-request latency attribution for the batch that served
    #: it during this render (populated when the pipeline has ledgers
    #: enabled; closed out over the render window by :meth:`render`).
    zone_ledgers: dict[str, "RequestLedger"] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.stale_zones or self.zone_errors)

    @property
    def remote_queries(self) -> int:
        return sum(b.remote_queries for b in self.batches)

    @property
    def total_queries(self) -> int:
        return sum(len(b.tables) for b in self.batches)

    @property
    def cache_hits(self) -> int:
        return sum(b.cache_hits for b in self.batches)

    @property
    def elapsed_s(self) -> float:
        return sum(b.elapsed_s for b in self.batches)


class DashboardSession:
    """One user's stateful session with a dashboard.

    Sessions are safe to drive from multiple threads: every interaction
    and render runs under the session's reentrant ``lock``, so session
    state (selections, rendered zone tables) is only ever mutated by one
    request at a time. Distinct sessions render fully in parallel — the
    herd-traffic case is thousands of *different* users loading the same
    dashboard, and those requests coalesce at the pipeline layer instead
    of serializing here.
    """

    def __init__(self, dashboard: Dashboard, pipeline: QueryPipeline):
        self.dashboard = dashboard
        self.pipeline = pipeline
        self.selections: dict[str, tuple[Any, ...]] = {}
        self.zone_tables: dict[str, Table] = {}
        self._rendered_specs: dict[str, str] = {}
        #: Reentrant so a server can atomically swap ``pipeline`` and
        #: render without deadlocking against the render's own locking.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Interactions
    # ------------------------------------------------------------------ #
    def select(self, zone_name: str, values) -> RenderResult:
        """Select marks in a zone (drives its outgoing filter actions)."""
        if zone_name not in self.dashboard.zones:
            raise WorkloadError(f"no zone {zone_name!r}")
        if not self.dashboard.actions_from(zone_name):
            raise WorkloadError(f"zone {zone_name!r} has no outgoing actions")
        with self.lock:
            self.selections[zone_name] = tuple(values)
            return self.render()

    def clear_selection(self, zone_name: str) -> RenderResult:
        with self.lock:
            self.selections.pop(zone_name, None)
            return self.render()

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def effective_spec(self, zone: Zone) -> QuerySpec:
        """The zone's query under the current selection state."""
        extra: list[Filter] = []
        for action in self.dashboard.actions_onto(zone.name):
            selected = self.selections.get(action.source)
            if selected:
                extra.append(CategoricalFilter(action.field, selected))
        return zone.spec(self.dashboard.datasource, tuple(extra))

    def render(self) -> RenderResult:
        with self.lock, obs.span(
            "dashboard.render", dashboard=self.dashboard.name
        ) as render_span:
            now = self.pipeline._ledger_now
            t_start = now()
            result = self._render()
            if result.zone_ledgers:
                # Widen each zone's ledger to the whole render: time
                # before its batch is queue, time after (other
                # iterations, selection validation) is render work.
                t_end = now()
                for ledger in result.zone_ledgers.values():
                    ledger.close_out(t_start, t_end)
            render_span.set(
                iterations=result.iterations,
                remote_queries=result.remote_queries,
                cache_hits=result.cache_hits,
            )
            if result.degraded:
                render_span.set(
                    stale_zones=len(result.stale_zones),
                    zone_errors=len(result.zone_errors),
                )
        return result

    def _render(self) -> RenderResult:
        batches: list[BatchResult] = []
        dropped: list[tuple[str, Any]] = []
        stale_zones: set[str] = set()
        zone_errors: dict[str, str] = {}
        zone_ledgers: dict[str, RequestLedger] = {}
        for iteration in range(1, MAX_ITERATIONS + 1):
            batch_specs: list[tuple[str, QuerySpec]] = []
            for zone in self.dashboard.queryable_zones():
                if zone.name in stale_zones or zone.name in zone_errors:
                    # Already degraded during this render: don't hammer a
                    # sick source again within the same request. The spec
                    # stays un-recorded, so the next interaction retries.
                    continue
                spec = self.effective_spec(zone)
                if self._rendered_specs.get(zone.name) != spec.canonical():
                    batch_specs.append((zone.name, spec))
            if not batch_specs:
                return RenderResult(
                    dict(self.zone_tables),
                    iteration - 1,
                    batches,
                    dropped,
                    stale_zones,
                    zone_errors,
                    zone_ledgers,
                )
            # Hint the pipeline about fields future interactions will
            # filter on, so cached results include them as dimensions
            # ("as long as the filtering columns are included", 3.2).
            reuse = frozenset(
                action.field
                for zone_name, _s in batch_specs
                for action in self.dashboard.actions_onto(zone_name)
            )
            with obs.span(
                "dashboard.iteration",
                index=iteration,
                zones=[n for n, _s in batch_specs],
            ) as iter_span:
                result = self.pipeline.run_batch(
                    [s for _n, s in batch_specs], reuse_fields=reuse
                )
                batches.append(result)
                zone_rows: dict[str, int] = {}
                for zone_name, spec in batch_specs:
                    key = spec.canonical()
                    ledger = result.ledgers.get(key)
                    if ledger is not None:
                        # A later iteration's ledger supersedes an earlier
                        # one — the zone's final answer is what it paid for.
                        zone_ledgers[zone_name] = ledger
                    if key in result.errors:
                        # Keep whatever the zone showed before; surface
                        # the error instead of failing the dashboard.
                        zone_errors[zone_name] = result.errors[key]
                        obs.counter("dashboard.zone_errors").inc()
                        continue
                    table = result.table_for(spec)
                    self.zone_tables[zone_name] = table
                    if result.is_stale(spec):
                        # A degraded (last-known-good) serve: show it but
                        # leave the spec un-recorded so the next render
                        # retries the source.
                        stale_zones.add(zone_name)
                        obs.counter("dashboard.stale_zones").inc()
                    else:
                        self._rendered_specs[zone_name] = key
                    zone_rows[zone_name] = table.n_rows
                    obs.counter(f"dashboard.zone.{zone_name}.renders").inc()
                iter_span.set(zone_rows=zone_rows)
                if stale_zones or zone_errors:
                    iter_span.set(
                        stale_zones=sorted(stale_zones),
                        zone_errors=sorted(zone_errors),
                    )
                obs.histogram("dashboard.iteration_s").observe(result.elapsed_s)
            dropped.extend(self._validate_selections())
        raise WorkloadError("dashboard did not stabilize (action cycle?)")

    def _validate_selections(self) -> list[tuple[str, Any]]:
        """Drop selections whose marks vanished from their source zone.

        Side effect of cascading filters (paper Fig. 2): "One side-effect
        of these updated results is that the previous user-selection (AA)
        in the Carrier zone is eliminated, as AA is not a carrier for the
        HNL-OGG market."
        """
        dropped: list[tuple[str, Any]] = []
        for zone_name, selected in list(self.selections.items()):
            table = self.zone_tables.get(zone_name)
            if table is None:
                continue
            for action in self.dashboard.actions_from(zone_name):
                if action.field not in table.column_names:
                    continue
                domain = set(table.column(action.field).python_values())
                surviving = tuple(v for v in selected if v in domain)
                if surviving != selected:
                    for gone in set(selected) - set(surviving):
                        dropped.append((zone_name, gone))
                    if surviving:
                        self.selections[zone_name] = surviving
                    else:
                        del self.selections[zone_name]
                    break
        return dropped
