"""Deterministic synthetic workloads standing in for the paper's data.

The paper's examples run on the FAA Flights On-Time dataset and on
proprietary customer traffic; we substitute seeded generators with the
same schema and realistic skew (Zipf-ish carrier/market popularity,
seasonal delays, rare cancellations).
"""

from .faa import (
    CARRIERS,
    MARKETS,
    STATES,
    FlightsDataset,
    flights_model,
    generate_flights,
)
from .dashboards import fig1_dashboard, fig2_dashboard
from .traffic import Interaction, TrafficGenerator

__all__ = [
    "CARRIERS",
    "MARKETS",
    "STATES",
    "FlightsDataset",
    "generate_flights",
    "flights_model",
    "fig1_dashboard",
    "fig2_dashboard",
    "TrafficGenerator",
    "Interaction",
]
