"""The paper's two example dashboards over the FAA dataset.

``fig1_dashboard`` rebuilds the nine-zone Flights On-Time dashboard of
Figure 1 (maps, slave charts, quick filters, record count, legend);
``fig2_dashboard`` rebuilds the three-zone Market/Carrier/Airline
dashboard of Figure 2 with its two interactive filter actions.
"""

from __future__ import annotations

from ..datatypes import LogicalType
from ..expr.ast import AggExpr, Cast, ColumnRef
from ..queries.spec import TopNFilter
from .faa import CARRIERS
from ..dashboard.model import Dashboard, FilterAction, Zone

_COUNT = AggExpr("count")


def _sum_bool(column: str) -> AggExpr:
    return AggExpr("sum", Cast(ColumnRef(column), LogicalType.INT))


def fig1_dashboard(datasource: str = "faa") -> Dashboard:
    """The FAA Flights On-Time dashboard (paper Figure 1)."""
    dash = Dashboard("flights-on-time", datasource)
    dash.add_zone(
        Zone(
            "origin_map",
            kind="map",
            dimensions=("origin_state_id",),
            measures=(("flights", _COUNT), ("avg_dep_delay", AggExpr("avg", ColumnRef("dep_delay")))),
        )
    )
    dash.add_zone(
        Zone(
            "dest_map",
            kind="map",
            dimensions=("dest_state_id",),
            measures=(("flights", _COUNT), ("avg_arr_delay", AggExpr("avg", ColumnRef("arr_delay")))),
        )
    )
    dash.add_zone(
        Zone(
            "carriers",
            kind="bar",
            dimensions=("carrier_name",),
            measures=(("flights", _COUNT), ("avg_arr_delay", AggExpr("avg", ColumnRef("arr_delay")))),
            order_by=(("flights", False),),
        )
    )
    dash.add_zone(
        Zone(
            "dest_airports",
            kind="bar",
            dimensions=("dest_airport",),
            measures=(("flights", _COUNT),),
            order_by=(("flights", False),),
        )
    )
    dash.add_zone(
        Zone(
            "cancellations_by_weekday",
            kind="bar",
            dimensions=("weekday",),
            measures=(("cancelled", _sum_bool("cancelled")), ("delayed", _sum_bool("delayed"))),
        )
    )
    dash.add_zone(
        Zone(
            "arr_delay_by_hour",
            kind="histogram",
            dimensions=("hour",),
            measures=(("avg_arr_delay", AggExpr("avg", ColumnRef("arr_delay"))), ("flights", _COUNT)),
        )
    )
    dash.add_zone(
        Zone("record_count", kind="text", measures=(("records", _COUNT),))
    )
    dash.add_zone(Zone("color_legend", kind="legend"))
    slaves = (
        "carriers",
        "dest_airports",
        "cancellations_by_weekday",
        "arr_delay_by_hour",
        "record_count",
    )
    # "The two upper maps ... allow specifying origins and destinations
    # for the slave charts at the bottom."
    dash.add_action(FilterAction("origin_map", "origin_state_id", slaves))
    dash.add_action(FilterAction("dest_map", "dest_state_id", slaves))
    # Right-hand side quick filters.
    dash.add_quick_filter("carrier_filter", "code", targets=list(slaves) + ["origin_map", "dest_map"])
    return dash


def fig2_dashboard(datasource: str = "faa") -> Dashboard:
    """Market / Carrier / Airline Name with two filter actions (Fig. 2)."""
    dash = Dashboard("market-carrier-airline", datasource)
    dash.add_zone(
        Zone(
            "market",
            kind="bar",
            dimensions=("market",),
            measures=(("flights_per_day", _COUNT),),
            order_by=(("flights_per_day", False),),
        )
    )
    dash.add_zone(
        Zone(
            "carrier",
            kind="bar",
            dimensions=("code",),
            measures=(("flights_per_day", _COUNT),),
            # "filtered to the top 5 carriers, based upon number of flights"
            filters=(TopNFilter("code", _COUNT, 5),),
            order_by=(("flights_per_day", False),),
        )
    )
    dash.add_zone(
        Zone(
            "airline_name",
            kind="bar",
            dimensions=("carrier_name",),
            measures=(("flights_per_day", _COUNT),),
            order_by=(("flights_per_day", False),),
        )
    )
    # "(1) selecting a field in the Market zone will filter the results in
    # the Carrier and Airline Name zones, and (2) selecting a carrier in
    # the Carrier zone will filter the Airline Name zone."
    dash.add_action(FilterAction("market", "market", ("carrier", "airline_name")))
    dash.add_action(FilterAction("carrier", "code", ("airline_name",)))
    return dash
