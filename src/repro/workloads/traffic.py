"""Multi-user traffic generation (paper 3.2).

"An extreme example of this is seen in Tableau Public ... The
user-generated traffic is saturated by initial load requests, as many
viewers just read content with the initial state of a dashboard and make
further interactions rarely."

The generator emits a deterministic stream of events: users pick
dashboards by Zipf popularity; each visit is an initial load optionally
followed by a geometric number of interactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

from ..dashboard.model import Dashboard
from ..errors import WorkloadError


@dataclass(frozen=True)
class Interaction:
    """One traffic event."""

    user: str
    dashboard: str
    kind: str  # "load" | "select" | "clear"
    zone: str | None = None
    values: tuple[Any, ...] = ()


class TrafficGenerator:
    """Seeded event stream over a set of dashboards."""

    def __init__(
        self,
        dashboards: list[Dashboard],
        *,
        n_users: int = 20,
        seed: int = 1,
        zipf_s: float = 1.2,
        interaction_rate: float = 0.2,
        selection_domains: dict[str, dict[str, list[Any]]] | None = None,
    ):
        """``selection_domains`` maps dashboard name → zone → candidate
        values a user may select in that zone (only zones with outgoing
        actions are eligible)."""
        if not dashboards:
            raise WorkloadError("traffic needs at least one dashboard")
        self.dashboards = dashboards
        self.n_users = n_users
        self.seed = seed
        self.interaction_rate = interaction_rate
        self.selection_domains = selection_domains or {}
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(dashboards))]
        total = sum(weights)
        self.popularity = [w / total for w in weights]

    def events(self, n_visits: int) -> Iterator[Interaction]:
        """Yield the event stream for ``n_visits`` dashboard visits."""
        rng = random.Random(self.seed)
        for _visit in range(n_visits):
            user = f"user{rng.randrange(self.n_users)}"
            dash = rng.choices(self.dashboards, weights=self.popularity)[0]
            yield Interaction(user, dash.name, "load")
            while rng.random() < self.interaction_rate:
                event = self._random_interaction(rng, user, dash)
                if event is None:
                    break
                yield event

    def _random_interaction(
        self, rng: random.Random, user: str, dash: Dashboard
    ) -> Interaction | None:
        domains = self.selection_domains.get(dash.name, {})
        sources = [
            name
            for name in domains
            if name in dash.zones and dash.actions_from(name)
        ]
        if not sources:
            return None
        zone = rng.choice(sources)
        values = domains[zone]
        k = max(1, min(len(values), int(rng.gauss(1.5, 1.0))))
        chosen = tuple(rng.sample(values, k))
        return Interaction(user, dash.name, "select", zone, chosen)
