"""Synthetic FAA Flights On-Time dataset (paper Figures 1–2, [43]).

The real dataset ("all the flights in the US in the past decade") is not
redistributable here, so this module generates a schema-compatible star
with controlled skew:

* fact ``flights``: flight date (sorted, RLE-friendly), departure hour,
  carrier, market (origin-destination city pair), origin/destination
  state, departure/arrival delays (seasonal + carrier effects),
  cancellations, diversions, distance;
* dimensions ``carriers``, ``markets``, ``states``.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from dataclasses import dataclass

from ..connectors.simdb import ServerProfile, SimulatedDatabase
from ..expr.ast import Call, ColumnRef, Literal
from ..queries.model import DataSourceModel, JoinSpec
from ..tde.engine import DataEngine
from ..tde.optimizer.parallel import PlannerOptions
from ..tde.storage.table import Table

CARRIERS = [
    ("AA", "American Airlines"),
    ("UA", "United Airlines"),
    ("DL", "Delta Air Lines"),
    ("WN", "Southwest Airlines"),
    ("B6", "JetBlue Airways"),
    ("AS", "Alaska Airlines"),
    ("NK", "Spirit Airlines"),
    ("F9", "Frontier Airlines"),
]

MARKETS = [
    ("LAX-SFO", "CA", "CA"),
    ("JFK-BOS", "NY", "MA"),
    ("HNL-OGG", "HI", "HI"),
    ("ORD-DEN", "IL", "CO"),
    ("SEA-PDX", "WA", "OR"),
    ("ATL-MCO", "GA", "FL"),
    ("DFW-IAH", "TX", "TX"),
    ("PHX-LAS", "AZ", "NV"),
    ("MSP-DTW", "MN", "MI"),
    ("CLT-BNA", "NC", "TN"),
    ("SLC-BOI", "UT", "ID"),
    ("MIA-SJU", "FL", "PR"),
]

STATES = sorted({m[1] for m in MARKETS} | {m[2] for m in MARKETS})

#: Markets that no HNL-OGG-like carrier serves; used to reproduce the
#: Figure 2 cascade (selecting HNL-OGG eliminates the AA selection).
_CARRIERS_BY_MARKET = {
    "HNL-OGG": (5,),  # only Alaska serves the island hop in this synth
}


@dataclass
class FlightsDataset:
    """Generated column data for the star schema."""

    flights: dict[str, list]
    carriers: dict[str, list]
    markets: dict[str, list]
    states: dict[str, list]
    n_rows: int

    # ------------------------------------------------------------------ #
    def load_into_engine(
        self,
        engine: DataEngine | None = None,
        *,
        options: PlannerOptions | None = None,
    ) -> DataEngine:
        """Register the star schema (with constraints) in a TDE engine."""
        engine = engine or DataEngine("faa", options=options or PlannerOptions())
        engine.load_pydict(
            "Extract.flights",
            self.flights,
            sort_keys=["date_"],
            encodings={"date_": "rle"},
            replace=True,
        )
        engine.load_pydict("Extract.carriers", self.carriers, replace=True)
        engine.load_pydict("Extract.markets", self.markets, replace=True)
        engine.load_pydict("Extract.states", self.states, replace=True)
        engine.declare_unique("Extract.carriers", ["id"])
        engine.declare_unique("Extract.markets", ["mid"])
        engine.declare_unique("Extract.states", ["sid"])
        engine.declare_foreign_key(
            "Extract.flights", ["carrier_id"], "Extract.carriers", ["id"], total=True, onto=True
        )
        engine.declare_foreign_key(
            "Extract.flights", ["market_id"], "Extract.markets", ["mid"], total=True, onto=True
        )
        return engine

    def load_into_simdb(
        self, profile: ServerProfile | None = None, *, name: str = "warehouse"
    ) -> SimulatedDatabase:
        """Stand up a simulated SQL server holding the star schema."""
        db = SimulatedDatabase(name, profile)
        engine = self.load_into_engine(db.engine)
        assert engine is db.engine
        return db


def generate_flights(
    n_rows: int,
    *,
    seed: int = 42,
    start: _dt.date = _dt.date(2014, 1, 1),
    days: int = 365,
) -> FlightsDataset:
    """Generate ``n_rows`` flights over ``days`` days starting at ``start``.

    Skew: carrier and market popularity follow a 1/(k+1) Zipf-like decay;
    delays combine a seasonal wave, an hour-of-day ramp and per-carrier
    offsets; ~2% of flights cancel, more in winter.
    """
    rng = random.Random(seed)
    carrier_weights = [1.0 / (k + 1) for k in range(len(CARRIERS))]
    market_weights = [1.0 / (k + 1) for k in range(len(MARKETS))]
    market_names = [m[0] for m in MARKETS]
    restricted = {
        market_names.index(name): allowed for name, allowed in _CARRIERS_BY_MARKET.items()
    }
    state_index = {s: i for i, s in enumerate(STATES)}

    dates: list[_dt.date] = []
    per_day = n_rows / days
    acc = 0.0
    for d in range(days):
        acc += per_day
        count = int(acc)
        acc -= count
        dates.extend([start + _dt.timedelta(days=d)] * count)
    while len(dates) < n_rows:
        dates.append(start + _dt.timedelta(days=days - 1))
    dates = dates[:n_rows]

    flights: dict[str, list] = {
        "date_": dates,
        "hour": [],
        "carrier_id": [],
        "market_id": [],
        "origin_state_id": [],
        "dest_state_id": [],
        "dep_delay": [],
        "arr_delay": [],
        "distance": [],
        "cancelled": [],
        "diverted": [],
    }
    for date in dates:
        market_id = rng.choices(range(len(MARKETS)), weights=market_weights)[0]
        allowed = restricted.get(market_id)
        if allowed is not None:
            carrier_id = rng.choice(allowed)
        else:
            carrier_id = rng.choices(range(len(CARRIERS)), weights=carrier_weights)[0]
        hour = min(23, max(5, int(rng.gauss(13, 4))))
        season = 6.0 * math.sin(2 * math.pi * (date.timetuple().tm_yday / 365.0))
        base = 8.0 + season + 0.6 * (hour - 6) + 1.5 * carrier_id % 7
        dep_delay = round(rng.gauss(base, 18.0), 1)
        arr_delay = round(dep_delay + rng.gauss(0, 6.0), 1)
        winter = date.month in (12, 1, 2)
        cancelled = rng.random() < (0.035 if winter else 0.015)
        diverted = (not cancelled) and rng.random() < 0.002
        _name, origin_state, dest_state = MARKETS[market_id]
        flights["hour"].append(hour)
        flights["carrier_id"].append(carrier_id)
        flights["market_id"].append(market_id)
        flights["origin_state_id"].append(state_index[origin_state])
        flights["dest_state_id"].append(state_index[dest_state])
        flights["dep_delay"].append(None if cancelled else dep_delay)
        flights["arr_delay"].append(None if cancelled else arr_delay)
        flights["distance"].append(rng.randrange(120, 2800))
        flights["cancelled"].append(cancelled)
        flights["diverted"].append(diverted)

    carriers = {
        "id": list(range(len(CARRIERS))),
        "code": [c[0] for c in CARRIERS],
        "carrier_name": [c[1] for c in CARRIERS],
    }
    markets = {
        "mid": list(range(len(MARKETS))),
        "market": [m[0] for m in MARKETS],
        "origin_airport": [m[0].split("-")[0] for m in MARKETS],
        "dest_airport": [m[0].split("-")[1] for m in MARKETS],
    }
    states = {"sid": list(range(len(STATES))), "state": list(STATES)}
    return FlightsDataset(flights, carriers, markets, states, n_rows)


def flights_model(name: str = "faa") -> DataSourceModel:
    """The published view: star join plus shared calculations (paper 5.2)."""
    return DataSourceModel(
        name,
        "Extract.flights",
        joins=(
            JoinSpec("Extract.carriers", (("carrier_id", "id"),)),
            JoinSpec("Extract.markets", (("market_id", "mid"),)),
        ),
        calculations={
            # Weekday of the flight (0 = Monday), for the Fig. 1 breakdown.
            "weekday": Call("weekday", (ColumnRef("date_"),)),
            # Arrival delay bucketed to the hour of day, for the histogram.
            "delayed": Call(">", (ColumnRef("arr_delay"), Literal(15.0))),
            "dep_delay_hours": Call("/", (ColumnRef("dep_delay"), Literal(60.0))),
        },
    )
