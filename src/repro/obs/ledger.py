"""Per-request latency attribution: where did *this* request's time go?

Aggregate histograms (``repro.obs.metrics``) say the p95 regressed;
a :class:`RequestLedger` says why one request was slow: it decomposes a
single spec's wall time into exclusive, conserved phases —

* ``queue`` — admission: time not attributable to any named phase
  (waiting for sibling queries in a concurrent batch, connection
  checkout, loop overhead). Computed as the residual at finish time, so
  **the phases always sum exactly to the measured wall time** — the
  conservation invariant the tests assert.
* ``cache_probe`` — intelligent-cache lookups (phase-0 probe and
  derivation lookups during result distribution).
* ``coalesce_wait`` — blocked on another request's in-flight execution
  (single-flight follower).
* ``compile`` — batch-graph analysis, fusion and query compilation.
* ``execute`` — the backend fetch itself (connection checkout is split
  out into ``queue`` via ``ExecutionOutcome.checkout_wait_s``).
* ``post_ops`` — local post-operations: deriving a member's answer from
  a fused/cached/leader result.
* ``degrade`` — deciding and serving the stale fallback (or the error).
* ``render`` — dashboard-side work after the pipeline answered.

Ledgers read an injectable clock (any ``() -> float`` monotonic
callable, e.g. ``VirtualTimeClock.monotonic``), so fault/chaos tests can
drive them deterministically on virtual time. They are only built when a
:class:`LedgerBook` is opened — the pipeline opens one per batch when
ledgers are enabled and passes ``None`` otherwise, keeping the disabled
hot path allocation-free.
"""

from __future__ import annotations

from typing import Any, Callable

#: The exclusive phase taxonomy, in pipeline order.
PHASES = (
    "queue",
    "cache_probe",
    "coalesce_wait",
    "compile",
    "execute",
    "post_ops",
    "degrade",
    "render",
)

_PHASE_SET = frozenset(PHASES)


class RequestLedger:
    """The attribution record for one spec within one request."""

    __slots__ = ("key", "outcome", "started_s", "wall_s", "_charges", "_finished")

    def __init__(self, key: str, started_s: float):
        self.key = key
        self.outcome = "open"
        self.started_s = started_s
        self.wall_s = 0.0
        self._charges: dict[str, float] = {}
        self._finished = False

    # ------------------------------------------------------------------ #
    def charge(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` of this request's wall time to ``phase``."""
        if phase not in _PHASE_SET:
            raise ValueError(f"unknown ledger phase {phase!r}")
        if seconds > 0.0:
            self._charges[phase] = self._charges.get(phase, 0.0) + seconds

    def finish(self, now: float, outcome: str) -> None:
        """Close the ledger: wall time is measured, ``queue`` absorbs the
        residual so the phases sum exactly to the wall time."""
        if self._finished:
            return
        self._finished = True
        self.outcome = outcome
        self.wall_s = max(now - self.started_s, 0.0)
        residual = self.wall_s - sum(self._charges.values())
        if residual != 0.0:
            self._charges["queue"] = self._charges.get("queue", 0.0) + residual

    def close_out(self, request_start: float, request_end: float) -> None:
        """Widen the ledger to a surrounding request window.

        Time before the batch opened the ledger (routing, session lock
        wait) lands in ``queue``; time after it finished (rendering,
        response assembly) lands in ``render``. Conservation holds by
        construction, and calling again with a yet-wider window only adds
        the new margins — so a dashboard render and the server request
        around it can each close out the same ledger.
        """
        end = self.started_s + self.wall_s
        pre = self.started_s - request_start
        if pre > 0.0:
            self._charges["queue"] = self._charges.get("queue", 0.0) + pre
            self.started_s = request_start
            self.wall_s += pre
        post = request_end - end
        if post > 0.0:
            self._charges["render"] = self._charges.get("render", 0.0) + post
            self.wall_s += post

    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def phases(self) -> dict[str, float]:
        """Every phase (zero-filled), in canonical order."""
        return {phase: self._charges.get(phase, 0.0) for phase in PHASES}

    @property
    def active_s(self) -> float:
        """Wall time spent doing work (everything but queue and render) —
        the slow-query log uses this to pick a request's worst zone."""
        return sum(
            v for k, v in self._charges.items() if k not in ("queue", "render")
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "outcome": self.outcome,
            "wall_s": self.wall_s,
            "phases": self.phases,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        charged = {k: round(v, 6) for k, v in self._charges.items()}
        return (
            f"RequestLedger({self.key!r}, outcome={self.outcome!r}, "
            f"wall={self.wall_s:.6f}, {charged})"
        )


class LedgerBook:
    """Per-batch ledger factory: one ledger per spec, one shared clock.

    The pipeline opens a book at batch start (every ledger's window
    starts there — a spec's time waiting for its phase *is* queue time)
    and finishes each ledger on its serving path. ``close()`` is the
    safety net for paths that produced an answer without an explicit
    finish.
    """

    __slots__ = ("now", "t0", "ledgers")

    def __init__(self, now: Callable[[], float]):
        self.now = now
        self.t0 = now()
        self.ledgers: dict[str, RequestLedger] = {}

    def open(self, key: str) -> RequestLedger:
        ledger = self.ledgers.get(key)
        if ledger is None:
            ledger = RequestLedger(key, self.t0)
            self.ledgers[key] = ledger
        return ledger

    def charge(self, key: str, phase: str, seconds: float) -> None:
        self.open(key).charge(phase, seconds)

    def finish(self, key: str, outcome: str) -> None:
        self.open(key).finish(self.now(), outcome)

    def close(self, default_outcome: str = "fresh") -> dict[str, RequestLedger]:
        """Finish any straggler ledgers and return the full map."""
        now = self.now()
        for ledger in self.ledgers.values():
            if not ledger.finished:
                ledger.finish(now, default_outcome)
        return self.ledgers
