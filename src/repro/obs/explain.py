"""EXPLAIN / EXPLAIN ANALYZE rendering for TDE physical plans.

The paper's methodology was "measure, explain, then optimize": every
optimization in sections 3–4 started from understanding why a specific
query was slow. This module is that explanation surface:

* ``EXPLAIN`` (``analyze=False``) — the physical operator tree, one line
  per operator with its estimated cardinality, followed by the optimizer
  provenance: which rewrite/culling/parallelization rules fired or
  declined for this query and why (see
  :mod:`repro.tde.optimizer.provenance`).
* ``EXPLAIN ANALYZE`` (``analyze=True``) — additionally executes the
  plan with a per-node :class:`~repro.tde.exec.physical.OpRecorder` and
  annotates every operator with actual rows, batch count and inclusive
  wall time, so estimated-vs-actual skew is visible per operator.

Output is deterministic for a fixed engine state: operators are numbered
in pre-order (``#0`` is the root), children render in plan order, and no
object identities or addresses appear in the text — node identities are
translated to plan positions before rendering.
"""

from __future__ import annotations

import json
from typing import Any

from ..tde.exec.exchange import PExchange, PMergeSorted, SharedBuild
from ..tde.exec.fused import PFusedPipeline
from ..tde.exec.physical import (
    ExecContext,
    OpRecorder,
    PFilter,
    PHashAggregate,
    PHashJoin,
    PIndexedRleScan,
    PLimit,
    PProject,
    PScan,
    PSingleRow,
    PSort,
    PStreamAggregate,
    PTopN,
    PWindow,
    PhysNode,
    execute_to_table,
)
from ..tde.optimizer import provenance
from ..tde.optimizer.cost import estimate_selectivity
from ..tde.optimizer.planner import plan_query


class ExplainResult(str):
    """EXPLAIN output: a plain string that also carries structured data.

    Subclassing ``str`` keeps every existing caller working (``"Scan" in
    engine.explain(q)``); :meth:`to_dict`/:meth:`to_json` expose the
    machine-readable plan for tools.
    """

    _data: dict[str, Any]

    def __new__(cls, text: str, data: dict[str, Any]) -> "ExplainResult":
        obj = super().__new__(cls, text)
        obj._data = data
        return obj

    def to_dict(self) -> dict[str, Any]:
        return self._data

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self._data, indent=indent, default=str)


# ---------------------------------------------------------------------- #
# Cardinality estimation over *physical* nodes
# ---------------------------------------------------------------------- #
def estimate_physical_rows(node: PhysNode) -> int:
    """Estimated output rows of a physical operator (bottom-up).

    Mirrors the logical cost model's cardinality rules
    (:func:`repro.tde.optimizer.cost.estimate_plan`) applied to the
    post-planning tree, so fractions, exchanges and local/global splits
    each get their own estimate.
    """
    if isinstance(node, PScan):
        stop = node.table.n_rows if node.stop is None else node.stop
        base = max(0, stop - node.start)
        if node.predicate is None or base == 0:
            return base
        return max(1, int(base * estimate_selectivity(node.predicate)))
    if isinstance(node, PIndexedRleScan):
        base = node.table.n_rows
        sel = estimate_selectivity(node.predicate)
        if node.residual is not None:
            sel *= estimate_selectivity(node.residual)
        return max(1, int(base * sel)) if base else 0
    if isinstance(node, PSingleRow):
        return node.table.n_rows
    if isinstance(node, PFilter):
        child = estimate_physical_rows(node.child)
        return max(1, int(child * estimate_selectivity(node.predicate))) if child else 0
    if isinstance(node, PProject):
        return estimate_physical_rows(node.child)
    if isinstance(node, PHashJoin):
        # FK joins keep probe-side cardinality (same rule as the logical
        # model); the build side only bounds the match rate.
        return estimate_physical_rows(node.probe)
    if isinstance(node, (PHashAggregate, PStreamAggregate)):
        child = estimate_physical_rows(node.child)
        if not node.groupby:
            return 1
        return max(1, min(child, int(child**0.75)))
    if isinstance(node, PSort):
        return estimate_physical_rows(node.child)
    if isinstance(node, PTopN):
        return min(estimate_physical_rows(node.child), node.n)
    if isinstance(node, PLimit):
        return min(estimate_physical_rows(node.child), node.n)
    if isinstance(node, PWindow):
        return estimate_physical_rows(node.child)
    if isinstance(node, PFusedPipeline):
        if node.table is not None:
            stop = node.table.n_rows if node.stop is None else node.stop
            base = max(0, stop - node.start)
        else:
            base = estimate_physical_rows(node.source)
        if node.predicate is not None and base:
            base = max(1, int(base * estimate_selectivity(node.predicate)))
        if node.specs is not None:
            if not node.groupby:
                return 1
            return max(1, min(base, int(base**0.75))) if base else 0
        return base
    if isinstance(node, (PExchange, PMergeSorted)):
        return sum(estimate_physical_rows(child) for child in node.inputs)
    if isinstance(node, SharedBuild):
        return estimate_physical_rows(node.child)
    children = node.children()
    if children:
        return estimate_physical_rows(children[0])
    return 0


# ---------------------------------------------------------------------- #
# Tree building and rendering
# ---------------------------------------------------------------------- #
def _build_tree(
    node: PhysNode,
    counter: list[int],
    stats: dict[int, dict[str, float]] | None,
) -> dict[str, Any]:
    """Pre-order tree of plain dicts; ``op`` is the stable plan position."""
    from ..tde.engine import _node_label

    index = counter[0]
    counter[0] += 1
    entry: dict[str, Any] = {
        "op": index,
        "label": _node_label(node),
        "est_rows": estimate_physical_rows(node),
    }
    if stats is not None:
        acc = stats.get(id(node))
        entry["actual"] = (
            None
            if acc is None
            else {
                "rows": int(acc["rows"]),
                "batches": int(acc["batches"]),
                "seconds": acc["seconds"],
            }
        )
    entry["children"] = [_build_tree(child, counter, stats) for child in node.children()]
    return entry


def _render_tree(entry: dict[str, Any], indent: int, lines: list[str], analyze: bool) -> None:
    pad = "  " * indent
    annot = f"est={entry['est_rows']} rows"
    if analyze:
        acc = entry.get("actual")
        if acc is None:
            annot += "; not executed"
        else:
            annot += (
                f"; actual={acc['rows']} rows, {acc['batches']} batches, "
                f"{acc['seconds'] * 1000.0:.2f}ms"
            )
    lines.append(f"{pad}#{entry['op']} {entry['label']}  ({annot})")
    for child in entry["children"]:
        _render_tree(child, indent + 1, lines, analyze)


def _render_provenance(notes, lines: list[str]) -> None:
    lines.append("== optimizer provenance ==")
    fired = [n for n in notes if n.fired]
    declined = [n for n in notes if not n.fired]
    lines.append("fired:")
    if fired:
        lines.extend(f"  {n.rule} — {n.detail}" for n in fired)
    else:
        lines.append("  (none)")
    lines.append("declined:")
    if declined:
        lines.extend(f"  {n.rule} — {n.detail}" for n in declined)
    else:
        lines.append("  (none)")


def explain_query(
    engine,
    query,
    *,
    analyze: bool = False,
    options=None,
) -> ExplainResult:
    """EXPLAIN (optionally ANALYZE) a TQL query against a DataEngine.

    Planning runs under a fresh provenance collector so the output lists
    exactly the rules consulted for *this* query. With ``analyze=True``
    the plan is executed once with a per-node recorder; timings are
    inclusive (an operator's time contains its children's, as in any
    Volcano-style profile).
    """
    logical = engine.parse(query) if isinstance(query, str) else query
    with provenance.collect() as collector:
        physical = plan_query(logical, engine.catalog, options or engine.options)

    stats: dict[int, dict[str, float]] | None = None
    result_rows: int | None = None
    elapsed: float | None = None
    if analyze:
        recorder = OpRecorder(per_node=True)
        ctx = ExecContext(batch_size=engine.batch_size, recorder=recorder)
        started = recorder.clock()
        result = execute_to_table(physical, ctx)
        elapsed = recorder.clock() - started
        result_rows = result.n_rows
        stats = recorder.node_stats()

    tree = _build_tree(physical, [0], stats)
    lines: list[str] = ["== physical plan =="]
    _render_tree(tree, 0, lines, analyze)
    _render_provenance(collector.notes, lines)
    if analyze:
        lines.append("== analyze ==")
        lines.append(
            f"result: {result_rows} rows in {elapsed * 1000.0:.2f}ms "
            "(operator times are inclusive of their children)"
        )
    data: dict[str, Any] = {
        "analyze": analyze,
        "plan": tree,
        "provenance": [n.to_dict() for n in collector.notes],
    }
    if isinstance(query, str):
        data["query"] = query
    if analyze:
        data["result_rows"] = result_rows
        data["elapsed_s"] = elapsed
    return ExplainResult("\n".join(lines), data)
