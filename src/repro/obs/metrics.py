"""Metrics registry: counters, gauges and latency histograms.

Components on the hot path register cheap instruments here — cache
hit/miss counters, pool wait-time histograms, executor concurrency
gauges, per-operator row counters — and the benchmark harness snapshots
the registry into ``BENCH_*.json`` so every optimization PR can prove
its win from the same numbers.

Like the tracer, the registry defaults to a null implementation whose
instruments are shared singletons: disabled instrumentation performs no
allocation, no dict lookup and no locking.
"""

from __future__ import annotations

import math
import threading
from typing import Any


class Counter:
    """A monotonically increasing count (events, rows, hits...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, in-flight queries...).

    Tracks the current value and the high-water mark, which is what the
    concurrency experiments report (peak in-flight queries).
    """

    __slots__ = ("name", "value", "high_water", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.high_water = max(self.high_water, value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n
            self.high_water = max(self.high_water, self.value)

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self.value -= n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "high_water": self.high_water}


class Histogram:
    """A latency/size distribution with interpolated percentiles.

    Keeps raw observations (benchmark runs are small — thousands of
    samples, not millions); ``percentile`` uses linear interpolation
    between closest ranks, matching numpy's default.
    """

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        with self._lock:
            return sum(self.values) / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float | None:
        """The p-th percentile (0..100), or None for an empty histogram.

        Edge cases are exact, never interpolated: an empty histogram has
        no percentiles (``None``), a single-sample histogram returns that
        sample for every ``p`` (the rank formula degenerates to index 0,
        so no linear interpolation between phantom neighbours happens).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            values = sorted(self.values)
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return values[lo]
        return values[lo] + (rank - lo) * (values[hi] - values[lo])

    def merge(self, other: "Histogram | _NullHistogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram.

        Combining per-thread histograms (each executor worker observing
        into its own instrument, merged at snapshot time) is the standard
        way to keep hot-path contention off a shared lock. Returns
        ``self`` for chaining; ``other`` is left untouched, and merging a
        null histogram is a no-op.
        """
        other_values = getattr(other, "values", None)
        if not other_values:
            return self
        # Snapshot under the source lock, extend under ours; never hold
        # both at once (no lock-ordering deadlock between two merges).
        other_lock = getattr(other, "_lock", None)
        if other_lock is not None:
            with other_lock:
                incoming = list(other_values)
        else:
            incoming = list(other_values)
        with self._lock:
            self.values.extend(incoming)
        return self

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = sorted(self.values)
        if not values:
            return {"type": "histogram", "count": 0}
        n = len(values)

        def pct(p: float) -> float:
            rank = (p / 100.0) * (n - 1)
            lo, hi = math.floor(rank), math.ceil(rank)
            if lo == hi:
                return values[lo]
            return values[lo] + (rank - lo) * (values[hi] - values[lo])

        return {
            "type": "histogram",
            "count": n,
            "sum": sum(values),
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / n,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as plain dicts, sorted by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].snapshot() for name in sorted(instruments)}

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: int | float = 1) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": 0}


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0
    high_water = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": 0.0, "high_water": 0.0}


class _NullHistogram:
    __slots__ = ()
    name = ""
    values: list[float] = []
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> None:
        return None

    def merge(self, other) -> "_NullHistogram":
        return self

    def snapshot(self) -> dict[str, Any]:
        return {"type": "histogram", "count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """The default registry: instruments are shared inert singletons."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {}

    def reset(self) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
