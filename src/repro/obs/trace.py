"""End-to-end tracing: the substrate of the Performance Recorder.

Tableau's practical answer to "why was this dashboard slow?" is the
Performance Recorder — a timeline of compile/cache/query/render events.
This module provides the span machinery behind our equivalent: a
:class:`Tracer` whose :meth:`~Tracer.span` context manager opens a named,
attributed span under the current one. The current span propagates
through ``contextvars``, so nested calls — pipeline phase → executor →
connector — form a tree without threading a handle through every
signature.

Beyond the tree, every span carries **explicit identity**: a
``trace_id`` shared by the whole request and its own ``span_id``, both
minted from per-tracer counters so seeded (serial / virtual-time) runs
produce byte-identical ids. Identity is what survives where contextvars
cannot:

* **Node hops.** A caller serializes :meth:`Span.context` via
  :meth:`TraceContext.to_wire`; the far side runs under
  :meth:`Tracer.activate`, which detaches the local span stack (this is
  a process boundary, simulated or not) and makes the next root adopt
  the wire context's ``trace_id`` with ``parent_span_id`` pointing back
  across the hop. :func:`stitch` later reassembles the pieces into one
  tree by identity.
* **Causality across requests.** A request whose latency was *inherited*
  from another request (a coalesce follower waiting on a leader, a cache
  hit on an entry some prefetch populated, a breaker opened by earlier
  failures) records a :class:`Link` — a typed edge to the other trace —
  via :meth:`Span.add_link`. The critical-path analyzer
  (:mod:`repro.obs.critpath`) follows links to attribute waited-on time
  to the components that actually spent it.

Two properties matter for a tracer that lives on the hot path:

* **The disabled path is free.** The default tracer is
  :data:`NULL_TRACER`; its ``span()`` returns a shared no-op context
  manager, so instrumented code allocates nothing and takes no locks
  when recording is off. All identity/link surfaces exist on the null
  objects as no-ops.
* **Worker threads join the trace explicitly.** ``contextvars`` do not
  flow into ``ThreadPoolExecutor`` workers on their own; fan-out sites
  wrap worker bodies with :func:`repro.obs.bind` (which captures
  :meth:`Tracer.current` at submit time and re-attaches it inside the
  worker).

A ``clock`` callable (default ``time.perf_counter``) timestamps spans;
``sim/`` and the tests substitute a :class:`VirtualClock` so traces of
simulated work are deterministic.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator


class VirtualClock:
    """A manually-advanced clock for deterministic traces (sim/, tests)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += seconds
            return self._now

    def __call__(self) -> float:
        return self._now


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of a point in a trace.

    Small enough to serialize into any request envelope; JSON-safe via
    :meth:`to_wire`. Deterministic under seeded runs because ids come
    from per-tracer counters, not entropy.
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """A plain JSON-able dict for cross-node request envelopes."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: dict | None) -> "TraceContext | None":
        """Parse a wire dict; tolerant of missing/foreign envelopes."""
        if not wire:
            return None
        trace_id = wire.get("trace_id")
        span_id = wire.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id))


class Link:
    """A typed causal edge from one span to a point in another trace.

    Links mark latency *inherited* from other requests — the coalesce
    follower → leader flight, the cache hit → the trace that populated
    the entry, a retry attempt → its prior attempt, a breaker rejection
    → the trace whose failure tripped it.
    """

    __slots__ = ("kind", "trace_id", "span_id", "attributes")

    def __init__(self, kind: str, trace_id: str, span_id: str, attributes: dict | None = None):
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.attributes = attributes or {}

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Link":
        return cls(
            data["kind"],
            data["trace_id"],
            data["span_id"],
            dict(data.get("attributes") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.kind!r} -> {self.trace_id}/{self.span_id})"


class Span:
    """One timed, named, attributed interval in a trace tree."""

    __slots__ = (
        "name",
        "start_s",
        "end_s",
        "attributes",
        "children",
        "parent",
        "trace_id",
        "span_id",
        "parent_span_id",
        "links",
    )

    def __init__(self, name: str, start_s: float, parent: "Span | None" = None):
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self.parent = parent
        self.trace_id = ""
        self.span_id = ""
        #: The id of the parent span — set even when ``parent`` is None
        #: because the parent lives across a node hop (stitching key).
        self.parent_span_id: str | None = None
        #: Causal cross-trace edges; lazily allocated (most spans have none).
        self.links: list[Link] | None = None

    # ------------------------------------------------------------------ #
    @property
    def duration_s(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def context(self) -> TraceContext | None:
        """This span's portable identity (None before a tracer minted ids)."""
        if not self.trace_id:
            return None
        return TraceContext(self.trace_id, self.span_id)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def add_link(
        self, kind: str, context: "TraceContext | None", **attributes: Any
    ) -> "Span":
        """Record a causal edge to ``context`` (no-op when it is None)."""
        if context is None:
            return self
        if self.links is None:
            self.links = []
        self.links.append(Link(kind, context.trace_id, context.span_id, attributes))
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (attributes stringified as-is)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.links:
            out["links"] = [link.to_dict() for link in self.links]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (JSONL import)."""
        span = cls(data["name"], float(data["start_s"]))
        span.end_s = float(data["start_s"]) + float(data.get("duration_s") or 0.0)
        span.trace_id = data.get("trace_id", "")
        span.span_id = data.get("span_id", "")
        span.parent_span_id = data.get("parent_span_id")
        span.attributes = dict(data.get("attributes") or {})
        for link_data in data.get("links") or ():
            if span.links is None:
                span.links = []
            span.links.append(Link.from_dict(link_data))
        for child_data in data.get("children") or ():
            child = cls.from_dict(child_data)
            child.parent = span
            span.children.append(child)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms, children={len(self.children)})"


def stitch(roots: list[Span]) -> list[Span]:
    """Reassemble multi-node traces into trees, by identity, in place.

    Roots whose ``parent_span_id`` names a span present in another root
    (the near side of a node hop) are re-attached as that span's
    children. Returns the true roots — spans whose parent is genuinely
    unknown. Children are ordered by start time afterwards so a stitched
    timeline renders chronologically.
    """
    index: dict[tuple[str, str], Span] = {}
    for root in roots:
        for span in root.walk():
            if span.span_id:
                index[(span.trace_id, span.span_id)] = span
    stitched: list[Span] = []
    for root in roots:
        parent = None
        if root.parent_span_id is not None:
            parent = index.get((root.trace_id, root.parent_span_id))
        if parent is not None and parent is not root:
            parent.children.append(root)
            parent.children.sort(key=lambda s: s.start_s)
            root.parent = parent
        else:
            stitched.append(root)
    return stitched


class _SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_token", "_rooted")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._current.get()
        span = Span(self._name, tracer.clock(), parent=parent)
        span.span_id = tracer._mint_span_id()
        if self._attributes:
            span.attributes.update(self._attributes)
        self._rooted = False
        if parent is None:
            remote = tracer._remote.get()
            if remote is not None:
                # The far side of a node hop: adopt the wire identity so
                # stitch() can hang this tree under the caller's span.
                span.trace_id = remote.trace_id
                span.parent_span_id = remote.span_id
            else:
                span.trace_id = tracer._mint_trace_id()
            if tracer._sink is None:
                with tracer._lock:
                    tracer._roots.append(span)
                self._rooted = True
        else:
            span.trace_id = parent.trace_id
            span.parent_span_id = parent.span_id
            # list.append is atomic under the GIL; concurrent workers
            # attached to the same parent interleave children safely.
            parent.children.append(span)
        self._token = tracer._current.set(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_s = self._tracer.clock()
        if exc_type is not None:
            span.attributes.setdefault("error", repr(exc))
        self._tracer._current.reset(self._token)
        if span.parent is None and not self._rooted:
            sink = self._tracer._sink
            if sink is not None:
                sink(span)
        return False


class _AttachContext:
    """Context manager adopting ``parent`` as the current span."""

    __slots__ = ("_tracer", "_parent", "_token")

    def __init__(self, tracer: "Tracer", parent: Span | None):
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> Span | None:
        self._token = self._tracer._current.set(self._parent)
        return self._parent

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        return False


class _ActivateContext:
    """Context manager entering a remote (wire) trace context.

    Simulates a process boundary: the local span stack is detached (the
    next span is a *root*, even in-process) and the wire context becomes
    the root's trace identity and remote parent.
    """

    __slots__ = ("_tracer", "_context", "_span_token", "_remote_token")

    def __init__(self, tracer: "Tracer", context: TraceContext):
        self._tracer = tracer
        self._context = context

    def __enter__(self) -> TraceContext:
        self._span_token = self._tracer._current.set(None)
        self._remote_token = self._tracer._remote.set(self._context)
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._remote.reset(self._remote_token)
        self._tracer._current.reset(self._span_token)
        return False


class Tracer:
    """Collects span trees; one instance per recording.

    Ids are minted from per-tracer counters (``itertools.count`` — an
    atomic next() under the GIL): runs whose spans open in a
    deterministic order (serial drivers, virtual time) get byte-identical
    trace/span ids, which is what makes exported traces diffable across
    seeded runs.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or time.perf_counter
        self._current: ContextVar[Span | None] = ContextVar("repro-obs-span", default=None)
        self._remote: ContextVar[TraceContext | None] = ContextVar(
            "repro-obs-remote", default=None
        )
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: When set, completed roots are handed here instead of
        #: accumulating in ``_roots`` — the memory bound a long-lived
        #: server needs (see :class:`repro.obs.sampling.TraceBuffer`).
        self._sink: Callable[[Span], Any] | None = None

    def _mint_trace_id(self) -> str:
        return f"{next(self._trace_ids):016x}"

    def _mint_span_id(self) -> str:
        return f"{next(self._span_ids):012x}"

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child of the current span (or a new root)."""
        return _SpanContext(self, name, attributes)

    def current(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def context(self) -> TraceContext | None:
        """The current trace identity: the open span's, or the wire's."""
        span = self._current.get()
        if span is not None and span.trace_id:
            return TraceContext(span.trace_id, span.span_id)
        return self._remote.get()

    def attach(self, parent: Span | None) -> _AttachContext:
        """Join a worker thread (or task) to an existing span.

        Capture ``tracer.current()`` where the work is *submitted*, then
        run the worker body under ``with tracer.attach(captured):`` so its
        spans nest under the submitter's.
        """
        return _AttachContext(self, parent)

    def activate(self, context: TraceContext | None):
        """Enter a trace context received over the wire (a node hop).

        The next span opened inside the block becomes a root carrying
        ``context``'s trace_id with ``parent_span_id`` pointing back at
        the sender — :func:`stitch` reassembles the full tree later.
        ``activate(None)`` is a transparent no-op, so receivers can pass
        whatever the envelope carried without checking.
        """
        if context is None:
            return _NOOP_CONTEXT
        return _ActivateContext(self, context)

    def set_sink(self, sink: Callable[[Span], Any] | None) -> None:
        """Divert completed roots to ``sink`` instead of ``_roots``.

        Installing a sink is how a long-lived server bounds trace
        memory: roots flow to a bounded buffer as they complete rather
        than accumulating for the recording's lifetime.
        """
        self._sink = sink

    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()


class _NoopContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullSpan:
    """Inert span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    parent = None
    trace_id = ""
    span_id = ""
    parent_span_id = None
    links = None
    context = None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def add_link(self, kind: str, context, **attributes: Any) -> "_NullSpan":
        return self

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list[Span]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()
_NOOP_CONTEXT = _NoopContext()


class NullTracer:
    """The default tracer: every operation is a shared no-op."""

    enabled = False
    roots: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def current(self) -> None:
        return None

    def context(self) -> None:
        return None

    def attach(self, parent: Span | None) -> _NoopContext:
        return _NOOP_CONTEXT

    def activate(self, context: TraceContext | None) -> _NoopContext:
        return _NOOP_CONTEXT

    def set_sink(self, sink) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
