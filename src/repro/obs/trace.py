"""End-to-end tracing: the substrate of the Performance Recorder.

Tableau's practical answer to "why was this dashboard slow?" is the
Performance Recorder — a timeline of compile/cache/query/render events.
This module provides the span machinery behind our equivalent: a
:class:`Tracer` whose :meth:`~Tracer.span` context manager opens a named,
attributed span under the current one. The current span propagates
through ``contextvars``, so nested calls — pipeline phase → executor →
connector — form a tree without threading a handle through every
signature.

Two properties matter for a tracer that lives on the hot path:

* **The disabled path is free.** The default tracer is
  :data:`NULL_TRACER`; its ``span()`` returns a shared no-op context
  manager, so instrumented code allocates nothing and takes no locks
  when recording is off.
* **Worker threads join the trace explicitly.** ``contextvars`` do not
  flow into ``ThreadPoolExecutor`` workers on their own; callers that
  fan out capture :meth:`Tracer.current` at submit time and wrap the
  worker body in :meth:`Tracer.attach`.

A ``clock`` callable (default ``time.perf_counter``) timestamps spans;
``sim/`` and the tests substitute a :class:`VirtualClock` so traces of
simulated work are deterministic.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterator


class VirtualClock:
    """A manually-advanced clock for deterministic traces (sim/, tests)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += seconds
            return self._now

    def __call__(self) -> float:
        return self._now


class Span:
    """One timed, named, attributed interval in a trace tree."""

    __slots__ = ("name", "start_s", "end_s", "attributes", "children", "parent")

    def __init__(self, name: str, start_s: float, parent: "Span | None" = None):
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self.parent = parent

    # ------------------------------------------------------------------ #
    @property
    def duration_s(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (attributes stringified as-is)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms, children={len(self.children)})"


class _SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._current.get()
        span = Span(self._name, tracer.clock(), parent=parent)
        if self._attributes:
            span.attributes.update(self._attributes)
        if parent is None:
            with tracer._lock:
                tracer._roots.append(span)
        else:
            # list.append is atomic under the GIL; concurrent workers
            # attached to the same parent interleave children safely.
            parent.children.append(span)
        self._token = tracer._current.set(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_s = self._tracer.clock()
        if exc_type is not None:
            span.attributes.setdefault("error", repr(exc))
        self._tracer._current.reset(self._token)
        return False


class _AttachContext:
    """Context manager adopting ``parent`` as the current span."""

    __slots__ = ("_tracer", "_parent", "_token")

    def __init__(self, tracer: "Tracer", parent: Span | None):
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> Span | None:
        self._token = self._tracer._current.set(self._parent)
        return self._parent

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        return False


class Tracer:
    """Collects span trees; one instance per recording."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or time.perf_counter
        self._current: ContextVar[Span | None] = ContextVar("repro-obs-span", default=None)
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child of the current span (or a new root)."""
        return _SpanContext(self, name, attributes)

    def current(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def attach(self, parent: Span | None) -> _AttachContext:
        """Join a worker thread (or task) to an existing span.

        Capture ``tracer.current()`` where the work is *submitted*, then
        run the worker body under ``with tracer.attach(captured):`` so its
        spans nest under the submitter's.
        """
        return _AttachContext(self, parent)

    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()


class _NoopContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullSpan:
    """Inert span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    parent = None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list[Span]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()
_NOOP_CONTEXT = _NoopContext()


class NullTracer:
    """The default tracer: every operation is a shared no-op."""

    enabled = False
    roots: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def current(self) -> None:
        return None

    def attach(self, parent: Span | None) -> _NoopContext:
        return _NOOP_CONTEXT

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
