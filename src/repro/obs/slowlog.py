"""A bounded worst-N slow-query log (the "why was it slow?" artifact).

Tableau answers individual-request questions with a Performance
Recording; a server cannot afford one per request, so this module keeps
only the **worst N** requests seen (a min-heap ordered by wall time) and
captures, for each, everything a post-hoc investigation needs:

* the request's :class:`~repro.obs.ledger.RequestLedger` (one per zone
  for a dashboard request) — where the time went;
* the slice of the decision-event ring emitted *during* the request
  (captured via the :meth:`EventLog.events(since_seq=...)
  <repro.obs.events.EventLog.events>` cursor drain) — why the caches and
  degradation machinery decided what they did;
* an auto-captured EXPLAIN of the worst zone's query, compiled as if
  cold (``assume_cold=True``), so the plan is inspectable even though
  the real serve populated the caches.

Admission is a two-step protocol so capture cost is only paid for
requests that will actually be kept: ``would_admit(wall_s)`` is a cheap
threshold/heap-top check the server performs first; only on ``True``
does it assemble a :class:`SlowQueryEntry` (ledgers, event slice,
EXPLAIN) and call ``admit``.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Any


@dataclass
class SlowQueryEntry:
    """One captured slow request: identity, timing, and forensics."""

    key: str  # e.g. "alice/flights-dashboard/load"
    wall_s: float
    t_s: float  # clock reading at capture time
    outcome: str  # "ok" / "degraded" / "failed"
    context: dict[str, Any] = field(default_factory=dict)
    #: zone (or spec) name -> ledger dict (``RequestLedger.to_dict()``).
    ledgers: dict[str, dict] = field(default_factory=dict)
    #: Decision events emitted during this request, as dicts.
    events: list[dict] = field(default_factory=list)
    #: EXPLAIN report for the worst zone's query, when captured.
    explain: dict | None = None
    #: The request's trace identity, when tracing was on — the one-click
    #: provenance hop from statz() slow log to the full retained trace.
    trace_id: str | None = None
    #: The critical-path analyzer's segments for the request's trace
    #: (``Segment.to_dict()`` rows): which component determined the wall.
    critical_path: list[dict] | None = None

    def to_dict(self) -> dict[str, Any]:
        out = {
            "key": self.key,
            "wall_s": self.wall_s,
            "t_s": self.t_s,
            "outcome": self.outcome,
            "context": dict(self.context),
            "ledgers": {k: dict(v) for k, v in self.ledgers.items()},
            "events": list(self.events),
            "explain": self.explain,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.critical_path is not None:
            out["critical_path"] = list(self.critical_path)
        return out


class SlowQueryLog:
    """Thread-safe bounded worst-N log ordered by wall time."""

    def __init__(self, capacity: int = 16, *, threshold_s: float = 0.0):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self.admitted = 0
        self.considered = 0
        self._lock = threading.Lock()
        self._seq = 0  # heap tie-break: FIFO among equal wall times
        self._heap: list[tuple[float, int, SlowQueryEntry]] = []

    # ------------------------------------------------------------------ #
    def would_admit(self, wall_s: float) -> bool:
        """Cheap pre-check: is ``wall_s`` bad enough to keep?

        Called on every request before any capture work happens, so it
        must stay allocation-free: a threshold compare plus a heap-top
        peek.
        """
        if wall_s < self.threshold_s:
            return False
        with self._lock:
            self.considered += 1
            if len(self._heap) < self.capacity:
                return True
            return wall_s > self._heap[0][0]

    def admit(self, entry: SlowQueryEntry) -> bool:
        """Insert a captured entry, evicting the mildest if full.

        Returns False when a concurrent admit beat this entry to the
        last slot with a worse wall time (the pre-check raced).
        """
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, (entry.wall_s, self._seq, entry))
            elif entry.wall_s > self._heap[0][0]:
                heapq.heapreplace(self._heap, (entry.wall_s, self._seq, entry))
            else:
                return False
            self._seq += 1
            self.admitted += 1
            return True

    # ------------------------------------------------------------------ #
    def entries(self) -> list[SlowQueryEntry]:
        """Captured entries, worst first."""
        with self._lock:
            ranked = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [entry for _wall, _seq, entry in ranked]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def snapshot(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "threshold_s": self.threshold_s,
            "considered": self.considered,
            "admitted": self.admitted,
            "entries": [entry.to_dict() for entry in self.entries()],
        }

    def reset(self) -> None:
        with self._lock:
            self._heap.clear()
            self._seq = 0
            self.admitted = 0
            self.considered = 0
