"""Critical-path analysis: which component determined a response time.

A span tree says where time was *spent*; the critical path says where
time was *determinative* — the single chain of work such that shortening
it would have shortened the response. The algorithm is the classic
backward walk over a span tree (as in Jaeger's critical-path view):

1. Start at the root's end and walk backwards. Repeatedly take the
   last-finishing child that ends at or before the cursor; the gap
   between that child's end and the cursor is the *parent's* self-time
   (it was the only thing running), then recurse into the child over its
   own window and move the cursor to the child's start.
2. Children overlapping an interval already attributed (concurrent
   siblings that finished later than the chosen one) are skipped — a
   concurrent sibling was, by construction, not determinative.

The result is a list of :class:`Segment` that exactly partitions
``[root.start_s, root.end_s]``: segment durations sum to the root's wall
time (the conservation property the tests pin down), and each segment
charges one component (via :func:`repro.obs.names.component_of`).

**Links** extend the walk across traces. When a span with self-time on
the path carries a causal :class:`~repro.obs.trace.Link` (a coalesce
follower's wait, a cache hit's populating trace), the analyzer resolves
the link target and — where the target's span overlaps the charged
window in absolute time (same clock, by construction of the link sites)
— descends into the *other* trace instead of charging the wait. A
coalesce follower's critical path thereby runs through the leader's
backend fetch, which is the true answer to "why was this request slow".

:func:`aggregate_report` runs the analyzer over the slow tail of a trace
set and ranks components by total self-time: the "what dominates p95"
view E22 asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .names import component_of
from .trace import Link, Span


@dataclass(frozen=True)
class Segment:
    """One critical-path interval charged to a single span/component."""

    name: str
    component: str
    trace_id: str
    start_s: float
    end_s: float
    #: Link kind through which the path entered this trace ("" for the
    #: request's own trace).
    via: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "component": self.component,
            "trace_id": self.trace_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "self_s": self.duration_s,
        }
        if self.via:
            out["via"] = self.via
        return out


def link_resolver(roots: list[Span]) -> Callable[[Link], Span | None]:
    """Build a link -> span resolver over a set of trace roots.

    Resolves by exact ``(trace_id, span_id)``; falls back to the target
    trace's root when the precise span is unknown (e.g. the leader's
    trace was exported but re-rooted across a node hop).
    """
    index: dict[tuple[str, str], Span] = {}
    by_trace: dict[str, Span] = {}
    for root in roots:
        by_trace.setdefault(root.trace_id, root)
        for span in root.walk():
            index[(span.trace_id, span.span_id)] = span

    def resolve(link: Link) -> Span | None:
        span = index.get((link.trace_id, link.span_id))
        if span is None:
            span = by_trace.get(link.trace_id)
        return span

    return resolve


def critical_path(
    root: Span,
    *,
    resolve_link: Callable[[Link], Span | None] | None = None,
    max_link_depth: int = 2,
) -> list[Segment]:
    """The chronological critical path of one trace.

    Without ``resolve_link``, waits that point at other traces are
    charged to the waiting span itself; with it, the path descends into
    linked traces (up to ``max_link_depth`` hops) wherever the target
    overlaps the charged window in absolute time.
    """
    if root.end_s is None:
        return []
    out: list[Segment] = []
    _descend(root, root.start_s, root.end_s, out, resolve_link, max_link_depth, "")
    out.reverse()  # segments were emitted walking backwards from the end
    return out


def _descend(
    span: Span,
    lo: float,
    hi: float,
    out: list[Segment],
    resolve: Callable[[Link], Span | None] | None,
    depth: int,
    via: str,
) -> None:
    cursor = hi
    # Closed children only, last-finishing first; the (end, start, name)
    # key makes tie order deterministic for zero-width virtual-time spans.
    kids = sorted(
        (c for c in span.children if c.end_s is not None),
        key=lambda c: (c.end_s, c.start_s, c.name),
    )
    while kids and cursor > lo:
        child = kids.pop()
        if child.end_s > cursor:
            continue  # concurrent sibling: its window is already attributed
        if child.end_s <= lo:
            break
        child_lo = max(child.start_s, lo)
        # (child.end, cursor]: only `span` itself was determinative.
        _self_time(span, child.end_s, cursor, out, resolve, depth, via)
        _descend(child, child_lo, child.end_s, out, resolve, depth, via)
        cursor = child_lo
    _self_time(span, lo, cursor, out, resolve, depth, via)


def _self_time(
    span: Span,
    lo: float,
    hi: float,
    out: list[Segment],
    resolve: Callable[[Link], Span | None] | None,
    depth: int,
    via: str,
) -> None:
    """Charge [lo, hi) to ``span`` — or follow a causal link through it."""
    if hi - lo <= 0.0:
        return
    if resolve is not None and depth > 0 and span.links:
        for link in span.links:
            target = resolve(link)
            if target is None or target is span or target.end_s is None:
                continue
            a = max(lo, target.start_s)
            b = min(hi, target.end_s)
            if b <= a:
                continue  # no absolute-time overlap: the link explains nothing here
            # Emitting backwards: trailing remainder, linked trace, leading
            # remainder — reversed later into chronological order.
            if hi > b:
                out.append(Segment(span.name, component_of(span.name), span.trace_id, b, hi, via))
            _descend(target, a, b, out, resolve, depth - 1, link.kind)
            if a > lo:
                out.append(Segment(span.name, component_of(span.name), span.trace_id, lo, a, via))
            return
    out.append(Segment(span.name, component_of(span.name), span.trace_id, lo, hi, via))


def slowlog_path(root, buffer=None) -> list[dict] | None:
    """Critical-path rows for a slow-log entry (None for untraced requests).

    ``buffer`` (a :class:`~repro.obs.sampling.TraceBuffer`) supplies the
    other retained traces so links — the coalesce leader, the populating
    prefetch — resolve when their traces were kept.
    """
    if root is None or not getattr(root, "trace_id", "") or root.end_s is None:
        return None
    roots = [root]
    if buffer is not None:
        roots = roots + [r for r in buffer.traces() if r is not root]
    resolve = link_resolver(roots)
    return [seg.to_dict() for seg in critical_path(root, resolve_link=resolve)]


# ---------------------------------------------------------------------- #
# Aggregate: what dominates the slow tail of a trace set
# ---------------------------------------------------------------------- #
def aggregate_report(
    roots: list[Span],
    *,
    percentile: float = 0.95,
    resolve_link: Callable[[Link], Span | None] | None = None,
    max_link_depth: int = 2,
) -> dict[str, Any]:
    """Rank components by critical-path self-time over the slow tail.

    Analyzes every trace whose wall time is at or above the requested
    percentile of the set (so "what dominates p95" is literal), charging
    linked traces' work where links resolve within ``roots``.
    """
    closed = [r for r in roots if r.end_s is not None]
    if not closed:
        return {
            "traces": 0,
            "analyzed": 0,
            "threshold_s": 0.0,
            "components": [],
            "dominant": None,
            "top_paths": [],
        }
    resolve = resolve_link or link_resolver(closed)
    walls = sorted(r.duration_s for r in closed)
    threshold = walls[min(int(len(walls) * percentile), len(walls) - 1)]
    slow = [r for r in closed if r.duration_s >= threshold]

    components: dict[str, float] = {}
    paths: dict[str, dict[str, Any]] = {}
    for root in slow:
        segments = critical_path(root, resolve_link=resolve, max_link_depth=max_link_depth)
        # The path signature: distinct components in first-touch order.
        signature = " > ".join(dict.fromkeys(s.component for s in segments))
        bucket = paths.setdefault(signature, {"path": signature, "count": 0, "total_s": 0.0})
        bucket["count"] += 1
        bucket["total_s"] += root.duration_s
        for segment in segments:
            components[segment.component] = (
                components.get(segment.component, 0.0) + segment.duration_s
            )

    total = sum(components.values())
    ranked = [
        {
            "component": name,
            "self_s": self_s,
            "share": (self_s / total) if total > 0 else 0.0,
        }
        for name, self_s in sorted(components.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return {
        "traces": len(closed),
        "analyzed": len(slow),
        "threshold_s": threshold,
        "components": ranked,
        "dominant": ranked[0]["component"] if ranked else None,
        "top_paths": sorted(paths.values(), key=lambda p: (-p["total_s"], p["path"])),
    }
