"""Tail-based trace sampling: keep what an operator will actually read.

A serving process cannot retain every trace, but dropping uniformly is
the wrong bound — the traces worth keeping are precisely the unusual
ones. :class:`TraceBuffer` decides *after* a trace completes (tail-based
sampling): every slow, errored, stale-serving or breaker-touched trace
is kept, plus a deterministic 1-in-N sample of healthy traffic as a
baseline for comparison. Both populations live in bounded deques, so
memory is fixed no matter how long the server runs.

Determinism matters here the same way it does for ids: the sample
decision is a pure function of the offer counter (``n % every == 1``
keeps the first trace seen and every N-th after), never of entropy, so
seeded runs export byte-identical trace sets.

Install :meth:`TraceBuffer.offer` as a tracer sink
(:meth:`~repro.obs.trace.Tracer.set_sink`) to bound a long recording, or
call it per request from a server's observe path (how
``VizServer``/``DataServer`` wire it).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any

from .trace import Span


@dataclass(frozen=True)
class SamplingPolicy:
    """What the buffer keeps; all thresholds are tail-based (post-hoc).

    ``slow_threshold_s``
        Traces at least this long are always kept.
    ``sample_every_n``
        Of the traces no keep-rule matched, keep 1 in N
        (deterministically, by offer order). ``0`` disables sampling.
    ``max_kept`` / ``max_sampled``
        Bounds on the two populations; oldest evict first.
    """

    slow_threshold_s: float = 0.25
    sample_every_n: int = 10
    max_kept: int = 256
    max_sampled: int = 64


class TraceBuffer:
    """Bounded tail-sampling store for completed trace roots.

    Not thread-safe by itself beyond what the GIL gives ``deque.append``
    and counter increments; servers call it from their (already
    serialized) observe path or a tracer sink.
    """

    def __init__(self, policy: SamplingPolicy | None = None):
        self.policy = policy or SamplingPolicy()
        self._kept: deque[tuple[str, Span]] = deque(maxlen=self.policy.max_kept)
        self._sampled: deque[Span] = deque(maxlen=self.policy.max_sampled)
        self.offered = 0
        self.dropped = 0
        self.reasons: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def offer(self, root: Span, *, force: str | None = None) -> str | None:
        """Decide a completed root's fate; returns the keep reason or None.

        ``force`` lets the caller assert a reason the span tree alone
        cannot show (e.g. the server knows the request served stale).
        """
        if not getattr(root, "trace_id", ""):
            return None  # null span or foreign object: nothing to keep
        self.offered += 1
        reason = force or self._keep_reason(root)
        if reason is not None:
            self.reasons[reason] = self.reasons.get(reason, 0) + 1
            self._kept.append((reason, root))
            return reason
        every = self.policy.sample_every_n
        if every > 0 and self.offered % every == 1 % every:
            self.reasons["sampled"] = self.reasons.get("sampled", 0) + 1
            self._sampled.append(root)
            return "sampled"
        self.dropped += 1
        return None

    def _keep_reason(self, root: Span) -> str | None:
        if root.duration_s >= self.policy.slow_threshold_s:
            return "slow"
        for span in root.walk():
            if "error" in span.attributes:
                return "error"
            if span.attributes.get("stale") or span.attributes.get("stale_zones"):
                return "stale"
            if span.links:
                for link in span.links:
                    if link.kind.startswith("breaker."):
                        return "breaker"
        return None

    # ------------------------------------------------------------------ #
    def traces(self) -> list[Span]:
        """Every retained root: kept (tail) first, then the healthy sample."""
        return [root for _, root in self._kept] + list(self._sampled)

    def find(self, trace_id: str) -> Span | None:
        for root in self.traces():
            if root.trace_id == trace_id:
                return root
        return None

    def snapshot(self) -> dict[str, Any]:
        """Cheap id-level view for ``statz()`` (no span payloads)."""
        return {
            "offered": self.offered,
            "kept": len(self._kept),
            "sampled": len(self._sampled),
            "dropped": self.dropped,
            "reasons": dict(self.reasons),
            "kept_trace_ids": [
                {"trace_id": root.trace_id, "reason": reason, "wall_s": root.duration_s}
                for reason, root in self._kept
            ],
        }

    def export_jsonl(self) -> str:
        """All retained roots, one JSON span tree per line (traceview input)."""
        lines = [json.dumps(root.to_dict(), default=str) for root in self.traces()]
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._kept.clear()
        self._sampled.clear()
        self.offered = 0
        self.dropped = 0
        self.reasons.clear()
