"""The span-name registry: every span name used in ``src/`` lives here.

Attribution is only as good as its labels. The critical-path analyzer
(:mod:`repro.obs.critpath`) charges each segment of a request's wall
time to a *component* — "backend", "cache", "executor" — and that
mapping is keyed by span name. A drive-by span with an unregistered
name would silently land in the catch-all bucket and rot the aggregate
report, so a lint test (``tests/obs/test_span_registry.py``) greps
``src/`` for ``span("...")`` literals and asserts each one appears in
:data:`SPAN_REGISTRY` below.

To add a span: pick ``<area>.<verb>`` (matching the existing style),
register it here with the component that should be *charged* for its
self-time, and say in the description what the span brackets.
"""

from __future__ import annotations

#: span name -> (component charged for its self-time, what it brackets).
SPAN_REGISTRY: dict[str, tuple[str, str]] = {
    # -- server entry points ------------------------------------------- #
    "vizserver.request": ("server", "one VizServer load/select request end to end"),
    "dataserver.query": ("server", "one DataServer session query end to end"),
    "cluster.query": ("server", "one TdeCluster query dispatched to a TDE node"),
    "dashboard.render": ("render", "a full dashboard render (all zones)"),
    "dashboard.iteration": ("render", "one render iteration over the zone list"),
    # -- query pipeline phases ----------------------------------------- #
    "pipeline.run_batch": ("pipeline", "a query batch through phases 0-5"),
    "pipeline.cache_probe": ("cache", "phase 0: intelligent-cache probe"),
    "pipeline.coalesce_wait": ("coalesce", "follower waiting on another request's leader"),
    "pipeline.batch_graph": ("pipeline", "phase 1: batch dependency graph"),
    "pipeline.fusion": ("pipeline", "phase 2: query fusion / subsumption folding"),
    "pipeline.compile": ("compile", "phase 3: spec -> engine query compilation"),
    "pipeline.remote_execution": ("executor", "phase 4: remote execution fan-out"),
    "pipeline.post_processing": ("pipeline", "phase 5: post-ops over fetched tables"),
    "pipeline.local_answers": ("cache", "answering derivable specs from cached results"),
    # -- executor / connectors ----------------------------------------- #
    "executor.query": ("executor", "one spec through the remote executor"),
    "executor.remote_fetch": ("backend", "the remote engine executing the compiled text"),
    "pool.connect": ("pool", "establishing a new pooled connection"),
    "simdb.select": ("backend", "simdb parsing + serving one SELECT"),
    "simdb.service": ("backend", "simdb's modeled service time (queue + work)"),
    "tde.execute": ("engine", "the local TDE engine executing a physical plan"),
    # -- background / resilience --------------------------------------- #
    "prefetch.warm": ("prefetch", "background prefetch warming predicted specs"),
    "retry.attempt": ("retry", "a retry attempt after a transient failure"),
}

#: Component charged when a span name is missing from the registry.
#: The lint test exists so this stays unused in practice.
UNKNOWN_COMPONENT = "other"


def component_of(span_name: str) -> str:
    """The component charged for a span's self-time on the critical path."""
    entry = SPAN_REGISTRY.get(span_name)
    if entry is not None:
        return entry[0]
    # Unregistered names fall into one catch-all bucket instead of
    # minting ad-hoc components that would fragment aggregate reports.
    return UNKNOWN_COMPONENT


#: Decision-event kinds (obs.event / Telemetry._emit) — every event kind
#: emitted in ``src/`` must be registered here with a one-line meaning,
#: mirroring the span registry above. A lint test greps ``src/`` for
#: ``event("...")`` literals and asserts each appears below, so slow-query
#: forensics and dashboards never see an undocumented event kind.
EVENT_REGISTRY: dict[str, str] = {
    # -- circuit breaker ----------------------------------------------- #
    "breaker.open": "failure threshold crossed; breaker now rejects fast",
    "breaker.half_open": "recovery window elapsed; probing with one trial request",
    "breaker.closed": "trial succeeded; breaker reset to normal operation",
    "breaker.rejected": "request rejected fast while the breaker is open",
    # -- caches --------------------------------------------------------- #
    "cache.subsumption": "intelligent-cache derivation decision (hit/derive/miss)",
    "cache.literal": "literal cache hit/miss for an exact query text",
    "cache.eviction": "cache eviction policy dropped an entry",
    # -- plan cache ----------------------------------------------------- #
    "plan_cache.hit": "compiled physical plan reused for a normalized-equal query",
    "plan_cache.miss": "no cached plan; query pays parse/rewrite/optimize",
    "plan_cache.evict": "LRU capacity pushed out the least-recent plan",
    "plan_cache.invalidate": "plans dropped (extract refresh, DDL) or a stale put refused",
    # -- query rewriting ------------------------------------------------ #
    "fusion": "batch query-fusion decision (merged or declined)",
    "fuse.pipeline": "planner collapsed a filter/project/aggregate chain into one fused operator",
    # -- coalescing ----------------------------------------------------- #
    "coalesce.lead": "request became the leader executing for a herd",
    "coalesce.join": "request joined an in-flight leader instead of executing",
    "coalesce.publish": "leader published its result to waiting followers",
    "coalesce.leader_failed": "leader failed; followers notified to retry",
    "coalesce.follower_retry": "follower retrying independently after leader failure",
    # -- degradation ---------------------------------------------------- #
    "degrade.stale_serve": "source down; served the last good result flagged stale",
    "degrade.stale_extract": "shadow extract served while the live source is down",
    "degrade.error": "source down and no stale fallback; per-spec error",
    # -- resilience / background ---------------------------------------- #
    "fault.injected": "fault plan injected an error or latency",
    "retry.attempt": "transient failure; backing off and retrying",
    "retry.succeeded": "retry attempt succeeded after earlier failures",
    "retry.gave_up": "retry budget exhausted; failing the operation",
    "pool": "connection pool lifecycle decision (grow/evict/recycle)",
    "prefetch": "background prefetch decision (warmed or skipped)",
    # -- SLO monitoring ------------------------------------------------- #
    "slo.breach": "windowed latency crossed the SLO burn threshold",
    "slo.recovered": "windowed latency returned under the SLO threshold",
    # -- cache-tier ring topology ---------------------------------------- #
    "ring.join": "a cache node joined the hash ring (warm-up may follow)",
    "ring.leave": "a cache node is draining its keys and leaving the ring",
    "ring.kill": "a cache node crashed off the ring, losing its data",
    "ring.fail": "a cache node became unreachable (data retained)",
    "ring.recover": "an unreachable cache node is back; repair converges it",
    # -- cache-tier replication ------------------------------------------ #
    "replica.fallback": "primary replica missed; a later replica served the read",
    "replica.read_repair": "a missing or stale replica was back-filled with the newest version",
    "replica.under_quorum": "a write was acked by fewer replicas than the quorum",
    "replica.expired": "a TTL'd entry outlived its deadline and was dropped on read",
    "replica.invalidate": "an invalidation (refresh/DDL) fanned out across the tier",
    # -- cache-tier resharding ------------------------------------------- #
    "reshard.plan": "topology change planned its key copies and surplus drops",
    "reshard.copy": "one key range migrated to its new owner",
    "reshard.done": "a migration, drain, or repair sweep finished",
}

#: Causal link kinds (Span.add_link) — documented here so traceview and
#: the docs can render them; the registry test asserts these too.
LINK_KINDS: dict[str, str] = {
    "coalesce.leader": "follower inherited latency from another request's leader flight",
    "cache.populated_by": "cache hit served a result another trace paid to produce",
    "prefetch.triggered_by": "background warm work caused by an earlier interaction",
    "retry.prior_attempt": "this attempt follows a failed earlier attempt",
    "breaker.opened_by": "request rejected by a breaker another trace tripped",
    "pool.waited_behind": "connection checkout waited behind another trace's holder",
}
