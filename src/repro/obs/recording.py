"""PerformanceRecording: export a trace as a timeline and as JSON.

The analogue of Tableau's Performance Recorder view: given a
:class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.events.EventLog`, this renders the recorded span
trees as an indented text timeline (offsets + durations + key
attributes), appends the decision-event log (the *why* behind the
timeline), and dumps the whole recording — spans, per-phase summaries,
metric snapshots, decision events — as JSON for the benchmark harness's
``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import json
from typing import Any

from .events import DecisionEvent, EventLog, NullEventLog
from .metrics import MetricsRegistry, NullMetricsRegistry
from .trace import NullTracer, Span, Tracer

#: Bump when the JSON layout changes; BENCH_*.json embeds it.
#: v2: adds the ``events`` section (decision-event log).
#: v3: span dicts carry trace identity (trace_id/span_id/parent_span_id)
#:     and causal ``links``.
SCHEMA_VERSION = 3


class PerformanceRecording:
    """A finished (or in-progress) recording over one tracer + registry."""

    def __init__(
        self,
        tracer: Tracer | NullTracer,
        metrics: MetricsRegistry | NullMetricsRegistry | None = None,
        events: EventLog | NullEventLog | None = None,
    ):
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NullMetricsRegistry()
        self.event_log = events if events is not None else NullEventLog()

    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> list[Span]:
        return list(self.tracer.roots)

    def find(self, name: str) -> Span | None:
        """First span with ``name`` across all recorded roots."""
        for root in self.tracer.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list[Span]:
        return [s for root in self.tracer.roots for s in root.find_all(name)]

    def events(
        self, kind: str | None = None, *, outcome: str | None = None
    ) -> list[DecisionEvent]:
        """Decision events, optionally filtered by kind (prefix) / outcome.

        This is how a recording answers "why": e.g.
        ``rec.events("cache.subsumption", outcome="reject")`` lists every
        rejected subsumption attempt with its human-readable reason.
        """
        return self.event_log.events(kind, outcome=outcome)

    # ------------------------------------------------------------------ #
    def phase_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: count and total/mean/max duration.

        This is the "where did the time go" table — the per-phase trace
        summary embedded in ``BENCH_*.json``.
        """
        acc: dict[str, list[float]] = {}
        for root in self.tracer.roots:
            for span in root.walk():
                acc.setdefault(span.name, []).append(span.duration_s)
        return {
            name: {
                "count": len(durations),
                "total_s": sum(durations),
                "mean_s": sum(durations) / len(durations),
                "max_s": max(durations),
            }
            for name, durations in sorted(acc.items())
        }

    # ------------------------------------------------------------------ #
    def render(self, *, max_depth: int | None = None) -> str:
        """The trace as an indented text timeline plus metric lines."""
        lines = ["== Performance Recording =="]
        roots = self.tracer.roots
        if not roots:
            lines.append("(no spans recorded)")
        origin = min((r.start_s for r in roots), default=0.0)
        for root in roots:
            self._render_span(root, origin, 0, max_depth, lines)
        metrics = self.metrics.snapshot()
        if metrics:
            lines.append("-- metrics --")
            for name, snap in metrics.items():
                lines.append(f"{name}: {_fmt_metric(snap)}")
        events = self.event_log.events()
        if events:
            lines.append("-- decision events --")
            for ev in events:
                offset_ms = (ev.t_s - origin) * 1000 if roots else 0.0
                lines.append(f"[+{offset_ms:9.3f}ms] {ev}")
            if self.event_log.dropped:
                lines.append(f"({self.event_log.dropped} earlier events rotated out)")
        return "\n".join(lines)

    def _render_span(
        self,
        span: Span,
        origin: float,
        depth: int,
        max_depth: int | None,
        lines: list[str],
    ) -> None:
        if max_depth is not None and depth > max_depth:
            return
        offset_ms = (span.start_s - origin) * 1000
        attrs = " ".join(
            f"{k}={v}" for k, v in span.attributes.items() if not isinstance(v, (dict, list))
        )
        links = ""
        if span.links:
            links = " " + " ".join(
                f"~{link.kind}->{link.trace_id}" for link in span.links
            )
        lines.append(
            "  " * depth
            + f"[+{offset_ms:9.3f}ms] {span.name}  {span.duration_s * 1000:.3f}ms"
            + (f"  {attrs}" if attrs else "")
            + links
        )
        for child in span.children:
            self._render_span(child, origin, depth + 1, max_depth, lines)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "spans": [root.to_dict() for root in self.tracer.roots],
            "phases": self.phase_summary(),
            "metrics": self.metrics.snapshot(),
            "events": self.event_log.to_list(),
            "event_counts": self.event_log.kinds(),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def emit(self) -> None:  # pragma: no cover - console convenience
        print("\n" + self.render())


def _fmt_metric(snap: dict[str, Any]) -> str:
    kind = snap.get("type")
    if kind == "counter":
        return str(snap["value"])
    if kind == "gauge":
        return f"{snap['value']} (high {snap['high_water']})"
    if snap.get("count", 0) == 0:
        return "0 samples"
    return (
        f"n={snap['count']} mean={snap['mean']:.6f} "
        f"p50={snap['p50']:.6f} p95={snap['p95']:.6f} p99={snap['p99']:.6f}"
    )
