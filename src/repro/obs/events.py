"""The decision-event log: *why* the system did what it did.

Spans and metrics (PR 1) answer *where the time went*; this module
answers *why*. Every optimizer-like component on the hot path — the
intelligent cache's subsumption prover, the literal cache, eviction, the
query fuser, the prefetcher, the connection pool — emits a typed
:class:`DecisionEvent` describing the decision it took and the
human-readable reason, so a :class:`~repro.obs.recording.PerformanceRecording`
tells the full story of a slow (or fast) request: missed cache because
the provider was truncated, un-fused batch because filters differed,
evicted entry because its retention score ranked last, and so on.

Design constraints mirror the tracer's:

* **Free when off.** The default log is :data:`NULL_EVENTS`, whose
  ``emit`` discards everything without allocating; the module-level
  :func:`repro.obs.event` helper dispatches to it. Components that must
  *compute* a reason string guard the computation behind
  :func:`repro.obs.events_enabled`.
* **Bounded.** Live logs are ring buffers (``maxlen`` events, default
  4096): a long soak cannot exhaust memory, and the most recent —
  diagnostic — window always survives.
* **Deterministic export.** Events carry a monotonically increasing
  sequence number assigned under the log's lock, so exports are stably
  ordered even when emitted from concurrent executor workers.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class DecisionEvent:
    """One recorded decision: what was decided, about what, and why."""

    seq: int
    t_s: float
    kind: str  # dotted component.decision, e.g. "cache.subsumption"
    outcome: str  # short verdict, e.g. "accept" / "reject" / "evict"
    reason: str  # human-readable explanation
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t_s": self.t_s,
            "kind": self.kind,
            "outcome": self.outcome,
            "reason": self.reason,
            "attributes": dict(self.attributes),
        }

    def __str__(self) -> str:
        attrs = " ".join(
            f"{k}={v}" for k, v in self.attributes.items() if not isinstance(v, (dict, list))
        )
        base = f"[{self.kind}] {self.outcome}: {self.reason}"
        return f"{base}  {attrs}" if attrs else base


class EventLog:
    """A bounded, thread-safe ring buffer of :class:`DecisionEvent`."""

    enabled = True

    def __init__(self, maxlen: int = 4096, clock: Callable[[], float] | None = None):
        import time

        self.clock = clock or time.perf_counter
        self._events: deque[DecisionEvent] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0  # events rotated out of the ring

    # ------------------------------------------------------------------ #
    def emit(self, kind: str, outcome: str, reason: str, **attributes: Any) -> None:
        """Record one decision; cheap enough for per-lookup call sites."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(
                DecisionEvent(seq, self.clock(), kind, outcome, reason, attributes)
            )

    # ------------------------------------------------------------------ #
    def cursor(self) -> int:
        """The next sequence number — pass to ``events(since_seq=...)``."""
        with self._lock:
            return self._seq

    def events(
        self,
        kind: str | None = None,
        *,
        outcome: str | None = None,
        since_seq: int | None = None,
    ):
        """Events in emission order, optionally filtered.

        ``kind`` matches exactly, or as a dotted prefix (``"cache"``
        selects ``cache.subsumption``, ``cache.evict``, ...).

        With ``since_seq`` this is an **incremental cursor drain**: only
        events with ``seq >= since_seq`` are returned, paired with the
        next cursor, so exporters and the slow-query log stop rescanning
        the whole ring::

            events, cursor = log.events(since_seq=cursor)

        Events that rotated out of the ring before the drain are simply
        gone (the ``dropped`` counter accounts for them).
        """
        with self._lock:
            snapshot = list(self._events)
            next_cursor = self._seq
        out = []
        for ev in snapshot:
            if since_seq is not None and ev.seq < since_seq:
                continue
            if kind is not None and ev.kind != kind and not ev.kind.startswith(kind + "."):
                continue
            if outcome is not None and ev.outcome != outcome:
                continue
            out.append(ev)
        if since_seq is not None:
            return out, next_cursor
        return out

    def kinds(self) -> dict[str, int]:
        """Event counts by kind (the summary row of a recording)."""
        counts: dict[str, int] = {}
        with self._lock:
            snapshot = list(self._events)
        for ev in snapshot:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterable[DecisionEvent]:
        return iter(self.events())

    def to_list(self) -> list[dict[str, Any]]:
        return [ev.to_dict() for ev in self.events()]

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0
            self.dropped = 0


class NullEventLog:
    """The default log: emission is a shared no-op, queries are empty."""

    enabled = False
    dropped = 0

    def emit(self, kind: str, outcome: str, reason: str, **attributes: Any) -> None:
        pass

    def cursor(self) -> int:
        return 0

    def events(
        self,
        kind: str | None = None,
        *,
        outcome: str | None = None,
        since_seq: int | None = None,
    ):
        if since_seq is not None:
            return [], 0
        return []

    def kinds(self) -> dict[str, int]:
        return {}

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def to_list(self) -> list:
        return []

    def reset(self) -> None:
        pass


NULL_EVENTS = NullEventLog()
