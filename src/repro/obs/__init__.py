"""repro.obs — the Performance Recorder substrate (tracing + metrics +
decision events).

Tableau answers "why was this dashboard slow?" with its Performance
Recorder: a timeline of compile / cache / query / render events. This
package is our equivalent, shared by every layer of the stack:

* :mod:`repro.obs.trace` — contextvar-propagated spans with a pluggable
  (virtual-time capable) clock;
* :mod:`repro.obs.metrics` — counters, gauges, latency histograms
  (p50/p95/p99);
* :mod:`repro.obs.events` — the bounded decision-event log: *why* the
  caches hit or missed, what was evicted and for what score, what fused;
* :mod:`repro.obs.recording` — the exporter: text timeline + JSON;
* :mod:`repro.obs.explain` — EXPLAIN/ANALYZE rendering for TDE physical
  plans (imported lazily; it depends on the TDE layer).

Observability is **off by default** and free when off: the module-level
:func:`span`, :func:`counter`, :func:`gauge`, :func:`histogram` and
:func:`event` helpers dispatch to shared null singletons until
:func:`enable` (or the :func:`recording` context manager) installs live
instances.

Typical benchmark usage::

    from repro import obs

    with obs.recording() as rec:
        pipeline.run_batch(specs)
    print(rec.render())          # the timeline + decision log
    rec.events("cache")          # typed queries over the decisions
    rec.to_json()                # machine-readable, for BENCH_*.json
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .events import NULL_EVENTS, DecisionEvent, EventLog, NullEventLog
from .ledger import PHASES, LedgerBook, RequestLedger
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .critpath import Segment, aggregate_report, critical_path, link_resolver
from .names import LINK_KINDS, SPAN_REGISTRY, component_of
from .recording import SCHEMA_VERSION, PerformanceRecording
from .sampling import SamplingPolicy, TraceBuffer
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import (
    NULL_TRACER,
    Link,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    VirtualClock,
    stitch,
)
from .window import (
    SLOMonitor,
    SLOObjective,
    Telemetry,
    TelemetryOptions,
    WindowedHistogram,
    WindowSet,
)

__all__ = [
    "Counter",
    "DecisionEvent",
    "EventLog",
    "Gauge",
    "Histogram",
    "LINK_KINDS",
    "LedgerBook",
    "Link",
    "MetricsRegistry",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullTracer",
    "PHASES",
    "PerformanceRecording",
    "RequestLedger",
    "SCHEMA_VERSION",
    "SLOMonitor",
    "SLOObjective",
    "SPAN_REGISTRY",
    "SamplingPolicy",
    "Segment",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "TelemetryOptions",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "VirtualClock",
    "WindowSet",
    "WindowedHistogram",
    "activate",
    "aggregate_report",
    "attach",
    "bind",
    "component_of",
    "counter",
    "critical_path",
    "current_span",
    "current_trace_context",
    "disable",
    "enable",
    "enabled",
    "event",
    "events_enabled",
    "gauge",
    "get_events",
    "get_metrics",
    "get_tracer",
    "histogram",
    "link_resolver",
    "recording",
    "set_events",
    "set_metrics",
    "set_tracer",
    "span",
    "stitch",
]

_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS
_events: EventLog | NullEventLog = NULL_EVENTS


# ---------------------------------------------------------------------- #
# Global state
# ---------------------------------------------------------------------- #
def get_tracer() -> Tracer | NullTracer:
    return _tracer


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    return _metrics


def get_events() -> EventLog | NullEventLog:
    return _events


def enabled() -> bool:
    """True when a live tracer is installed."""
    return _tracer.enabled


def events_enabled() -> bool:
    """True when a live event log is installed.

    Call sites whose *reason* computation is not free (e.g. re-proving a
    failed subsumption to name the failing condition) guard it with this.
    """
    return _events.enabled


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def set_metrics(
    metrics: MetricsRegistry | NullMetricsRegistry,
) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``metrics`` globally; returns the previous registry."""
    global _metrics
    previous, _metrics = _metrics, metrics
    return previous


def set_events(events: EventLog | NullEventLog) -> EventLog | NullEventLog:
    """Install ``events`` globally; returns the previous log."""
    global _events
    previous, _events = _events, events
    return previous


def enable(
    clock: Callable[[], float] | None = None,
    *,
    sink: Callable[[Span], Any] | None = None,
) -> PerformanceRecording:
    """Turn observability on; returns the recording being captured.

    ``sink`` diverts completed trace roots out of the tracer (e.g. to a
    bounded :class:`TraceBuffer` via ``buffer.offer``) so a long-lived
    process does not accumulate every trace for the recording's lifetime.
    """
    tracer = Tracer(clock=clock)
    if sink is not None:
        tracer.set_sink(sink)
    metrics = MetricsRegistry()
    events = EventLog(clock=clock)
    set_tracer(tracer)
    set_metrics(metrics)
    set_events(events)
    return PerformanceRecording(tracer, metrics, events)


def disable() -> None:
    """Restore the free no-op instrumentation and clear live state.

    Symmetric to :func:`enable`: the outgoing live tracer, registry and
    event log are *reset* before the null singletons are reinstalled, so
    obs state cannot leak between tests (or between recordings taken
    without the :func:`recording` context manager). Recordings whose data
    must outlive ``disable()`` should snapshot (``to_dict()``) first.
    """
    previous_tracer = set_tracer(NULL_TRACER)
    previous_metrics = set_metrics(NULL_METRICS)
    previous_events = set_events(NULL_EVENTS)
    previous_tracer.reset()
    previous_metrics.reset()
    previous_events.reset()


@contextmanager
def recording(
    clock: Callable[[], float] | None = None,
) -> Iterator[PerformanceRecording]:
    """Enable observability for a block, restoring prior state after.

    Yields the :class:`PerformanceRecording`, which stays readable after
    the block exits (the tracer/registry/events it references are kept
    alive).
    """
    previous_tracer, previous_metrics, previous_events = _tracer, _metrics, _events
    rec = enable(clock)
    try:
        yield rec
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
        set_events(previous_events)


# ---------------------------------------------------------------------- #
# Hot-path helpers (dispatch to the installed tracer/registry/log)
# ---------------------------------------------------------------------- #
def span(name: str, **attributes: Any):
    """Open a span under the current one (no-op context when disabled)."""
    return _tracer.span(name, **attributes)


def current_span() -> Span | None:
    """The innermost open span, for explicit cross-thread hand-off."""
    return _tracer.current()


def attach(parent: Span | None):
    """Adopt ``parent`` as the current span inside a worker thread."""
    return _tracer.attach(parent)


def current_trace_context() -> TraceContext | None:
    """The current trace identity: the open span's, or an activated wire's.

    This is what request envelopes serialize (``ctx.to_wire()``) and
    what causal link sites capture — free (None) when tracing is off.
    """
    return _tracer.context()


def activate(context: TraceContext | None):
    """Enter a trace context received across a node hop.

    The next span opened in the block roots a new tree carrying the
    sender's trace_id (stitched later by :func:`stitch`); ``None`` — an
    envelope without trace headers — is a transparent no-op.
    """
    return _tracer.activate(context)


def bind(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Make ``fn`` carry the *current* span into whatever thread runs it.

    The fan-out ergonomics fix: ``pool.map(obs.bind(work), items)``
    replaces hand-written capture/attach pairs at every submission site.
    Returns ``fn`` unchanged when tracing is off, so the disabled path
    keeps zero wrapper overhead.
    """
    tracer = _tracer
    if not tracer.enabled:
        return fn
    parent = tracer.current()

    def bound(*args: Any, **kwargs: Any) -> Any:
        with tracer.attach(parent):
            return fn(*args, **kwargs)

    return bound


def counter(name: str):
    return _metrics.counter(name)


def gauge(name: str):
    return _metrics.gauge(name)


def histogram(name: str):
    return _metrics.histogram(name)


def event(kind: str, outcome: str, reason: str, **attributes: Any) -> None:
    """Record one decision event (no-op when observability is off)."""
    _events.emit(kind, outcome, reason, **attributes)
