"""repro.obs — the Performance Recorder substrate (tracing + metrics).

Tableau answers "why was this dashboard slow?" with its Performance
Recorder: a timeline of compile / cache / query / render events. This
package is our equivalent, shared by every layer of the stack:

* :mod:`repro.obs.trace` — contextvar-propagated spans with a pluggable
  (virtual-time capable) clock;
* :mod:`repro.obs.metrics` — counters, gauges, latency histograms
  (p50/p95/p99);
* :mod:`repro.obs.recording` — the exporter: text timeline + JSON.

Observability is **off by default** and free when off: the module-level
:func:`span`, :func:`counter`, :func:`gauge` and :func:`histogram`
helpers dispatch to shared null singletons until :func:`enable` (or the
:func:`recording` context manager) installs live instances.

Typical benchmark usage::

    from repro import obs

    with obs.recording() as rec:
        pipeline.run_batch(specs)
    print(rec.render())          # the timeline
    rec.to_json()                # machine-readable, for BENCH_*.json
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .recording import SCHEMA_VERSION, PerformanceRecording
from .trace import NULL_TRACER, NullTracer, Span, Tracer, VirtualClock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "PerformanceRecording",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "VirtualClock",
    "attach",
    "counter",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "recording",
    "set_metrics",
    "set_tracer",
    "span",
]

_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS


# ---------------------------------------------------------------------- #
# Global state
# ---------------------------------------------------------------------- #
def get_tracer() -> Tracer | NullTracer:
    return _tracer


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    return _metrics


def enabled() -> bool:
    """True when a live tracer is installed."""
    return _tracer.enabled


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def set_metrics(
    metrics: MetricsRegistry | NullMetricsRegistry,
) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``metrics`` globally; returns the previous registry."""
    global _metrics
    previous, _metrics = _metrics, metrics
    return previous


def enable(clock: Callable[[], float] | None = None) -> PerformanceRecording:
    """Turn observability on; returns the recording being captured."""
    tracer = Tracer(clock=clock)
    metrics = MetricsRegistry()
    set_tracer(tracer)
    set_metrics(metrics)
    return PerformanceRecording(tracer, metrics)


def disable() -> None:
    """Restore the free no-op instrumentation."""
    set_tracer(NULL_TRACER)
    set_metrics(NULL_METRICS)


@contextmanager
def recording(
    clock: Callable[[], float] | None = None,
) -> Iterator[PerformanceRecording]:
    """Enable observability for a block, restoring prior state after.

    Yields the :class:`PerformanceRecording`, which stays readable after
    the block exits (the tracer/registry it references are kept alive).
    """
    previous_tracer, previous_metrics = _tracer, _metrics
    rec = enable(clock)
    try:
        yield rec
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


# ---------------------------------------------------------------------- #
# Hot-path helpers (dispatch to the installed tracer/registry)
# ---------------------------------------------------------------------- #
def span(name: str, **attributes: Any):
    """Open a span under the current one (no-op context when disabled)."""
    return _tracer.span(name, **attributes)


def current_span() -> Span | None:
    """The innermost open span, for explicit cross-thread hand-off."""
    return _tracer.current()


def attach(parent: Span | None):
    """Adopt ``parent`` as the current span inside a worker thread."""
    return _tracer.attach(parent)


def counter(name: str):
    return _metrics.counter(name)


def gauge(name: str):
    return _metrics.gauge(name)


def histogram(name: str):
    return _metrics.histogram(name)
