"""Rolling time-windowed metrics and burn-rate SLO monitoring.

The cumulative histograms in :mod:`repro.obs.metrics` answer "what was
the p95 since startup?" — useless for steering a server that has been up
for a week. This module adds the time axis:

* :class:`WindowedHistogram` — a ring of fixed sub-window
  :class:`~repro.obs.metrics.Histogram` buckets. Observations land in
  the bucket for the current sub-window (stale cells are lazily
  recycled); reads merge the live cells via the existing
  ``Histogram.merge``, yielding percentiles over the trailing window at
  the cost of one small merge per read instead of any per-observation
  bookkeeping.
* :class:`WindowSet` — windowed histograms keyed by a dimension value
  (per-session, per-backend, per-dashboard), with a bounded key space.
* :class:`SLOMonitor` — a latency objective (fraction of requests under
  a threshold) evaluated as **error-budget burn rate** over two windows:
  a fast window for detection speed and a slow window for confidence
  (the multi-window burn-rate alerting recipe). Breach and recovery emit
  ``slo.breach`` / ``slo.recovered`` decision events.

Everything reads an injectable clock — either a ``() -> float`` callable
or any object with a ``monotonic()`` method (so
:class:`repro.faults.clock.VirtualTimeClock` plugs in directly) — which
makes the whole layer virtual-time compatible: chaos tests drive
deterministic breach→recovery timelines in microseconds of real time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .metrics import Histogram


def _now_fn(clock) -> Callable[[], float]:
    """Normalize a clock argument to a monotonic ``() -> float``."""
    if clock is None:
        return time.monotonic
    monotonic = getattr(clock, "monotonic", None)
    if monotonic is not None:
        return monotonic
    return clock


class WindowedHistogram:
    """Percentiles over a trailing time window, via a sub-window ring."""

    def __init__(
        self,
        name: str,
        *,
        window_s: float = 60.0,
        buckets: int = 12,
        clock=None,
    ):
        if window_s <= 0 or buckets < 1:
            raise ValueError("window_s must be > 0 and buckets >= 1")
        self.name = name
        self.window_s = float(window_s)
        self.buckets = buckets
        self.span_s = self.window_s / buckets
        self._now = _now_fn(clock)
        self._lock = threading.Lock()
        #: slot -> [epoch, Histogram, exemplar]; a cell is live iff its
        #: epoch is within the trailing window of the current epoch. The
        #: exemplar is ``(value, trace_id)`` of the worst observation in
        #: the cell — how a p99 read points at a real trace.
        self._ring: list[list] = [[-1, None, None] for _ in range(buckets)]
        self.observed = 0

    # ------------------------------------------------------------------ #
    def observe(self, value: float, *, trace_id: str | None = None) -> None:
        epoch = int(self._now() // self.span_s)
        slot = epoch % self.buckets
        with self._lock:
            cell = self._ring[slot]
            if cell[0] != epoch:
                cell[0] = epoch
                cell[1] = Histogram(f"{self.name}[{epoch}]")
                cell[2] = None
            self.observed += 1
            if trace_id and (cell[2] is None or value > cell[2][0]):
                cell[2] = (value, trace_id)
        # The cell histogram has its own lock; observing outside ours
        # keeps the windowed lock hold time to the rotation check.
        cell[1].observe(value)

    # ------------------------------------------------------------------ #
    def merged(self, horizon_s: float | None = None) -> Histogram:
        """The live cells folded into one histogram (trailing window)."""
        horizon = self.window_s if horizon_s is None else min(horizon_s, self.window_s)
        now_epoch = int(self._now() // self.span_s)
        oldest = now_epoch - int(horizon / self.span_s)
        out = Histogram(self.name)
        with self._lock:
            cells = [(cell[0], cell[1]) for cell in self._ring]
        for epoch, hist in cells:
            if hist is not None and oldest < epoch <= now_epoch:
                out.merge(hist)
        return out

    def exemplar(self, horizon_s: float | None = None) -> dict[str, Any] | None:
        """The worst traced observation in the window: p99's "go look here"."""
        horizon = self.window_s if horizon_s is None else min(horizon_s, self.window_s)
        now_epoch = int(self._now() // self.span_s)
        oldest = now_epoch - int(horizon / self.span_s)
        worst: tuple[float, str] | None = None
        with self._lock:
            for epoch, _hist, cell_exemplar in self._ring:
                if cell_exemplar is None or not oldest < epoch <= now_epoch:
                    continue
                if worst is None or cell_exemplar[0] > worst[0]:
                    worst = cell_exemplar
        if worst is None:
            return None
        return {"value": worst[0], "trace_id": worst[1]}

    def snapshot(self, horizon_s: float | None = None) -> dict[str, Any]:
        snap = self.merged(horizon_s).snapshot()
        snap["window_s"] = self.window_s
        snap["observed_total"] = self.observed
        exemplar = self.exemplar(horizon_s)
        if exemplar is not None:
            snap["exemplar"] = exemplar
        return snap


class WindowSet:
    """Windowed histograms keyed by dimension value, with a key cap.

    Dimensions like "session" are unbounded in production; the cap keeps
    a soak from growing the registry forever. Overflowed observations
    are counted (never silently dropped from the accounting) but get no
    per-key window.
    """

    def __init__(
        self,
        name: str,
        *,
        window_s: float = 60.0,
        buckets: int = 12,
        max_keys: int = 64,
        clock=None,
    ):
        self.name = name
        self.window_s = window_s
        self.buckets = buckets
        self.max_keys = max_keys
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: dict[str, WindowedHistogram] = {}
        self.overflowed = 0

    def observe(self, key: str, value: float) -> None:
        window = self._windows.get(key)
        if window is None:
            with self._lock:
                window = self._windows.get(key)
                if window is None:
                    if len(self._windows) >= self.max_keys:
                        self.overflowed += 1
                        return
                    window = WindowedHistogram(
                        f"{self.name}.{key}",
                        window_s=self.window_s,
                        buckets=self.buckets,
                        clock=self._clock,
                    )
                    self._windows[key] = window
        window.observe(value)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._windows)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            windows = dict(self._windows)
        return {
            "overflowed": self.overflowed,
            "keys": {key: windows[key].snapshot() for key in sorted(windows)},
        }


# ---------------------------------------------------------------------- #
# SLO burn-rate monitoring
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SLOObjective:
    """A latency objective: ``objective`` of requests under ``threshold_s``.

    ``burn_threshold`` is how fast the error budget must burn in the
    fast window to page: 2.0 means "at this rate the whole budget is
    gone in half the slow window".
    """

    name: str = "latency"
    threshold_s: float = 0.25
    objective: float = 0.95
    fast_window_s: float = 30.0
    slow_window_s: float = 300.0
    burn_threshold: float = 2.0


class SLOMonitor:
    """Evaluates an :class:`SLOObjective` over fast/slow burn windows.

    A ring of ``[epoch, good, bad]`` counter cells spans the slow
    window; the fast burn reads only the cells inside the fast window.
    Breach requires *both* windows burning (fast ≥ ``burn_threshold``
    and slow ≥ 1.0): the fast window gives detection latency, the slow
    window stops a single bad second from paging. Recovery is when the
    fast burn drops under 1.0 — the budget has stopped burning.
    """

    def __init__(self, objective: SLOObjective | None = None, *, clock=None, buckets: int = 30):
        self.objective = objective or SLOObjective()
        if self.objective.fast_window_s > self.objective.slow_window_s:
            raise ValueError("fast window must not exceed the slow window")
        self.buckets = buckets
        self.span_s = self.objective.slow_window_s / buckets
        self._now = _now_fn(clock)
        self._lock = threading.Lock()
        self._ring: list[list] = [[-1, 0, 0] for _ in range(buckets)]
        self.state = "ok"
        self.breaches = 0
        self.last_transition_t: float | None = None
        self.good_total = 0
        self.bad_total = 0

    # ------------------------------------------------------------------ #
    def record(self, latency_s: float) -> str:
        """Record one request and re-evaluate; returns the current state."""
        good = latency_s <= self.objective.threshold_s
        now = self._now()
        epoch = int(now // self.span_s)
        slot = epoch % self.buckets
        with self._lock:
            cell = self._ring[slot]
            if cell[0] != epoch:
                cell[0], cell[1], cell[2] = epoch, 0, 0
            cell[1 if good else 2] += 1
            if good:
                self.good_total += 1
            else:
                self.bad_total += 1
        return self.evaluate(now)

    def _burn(self, horizon_s: float, now_epoch: int) -> float:
        """Error-budget burn rate over the trailing ``horizon_s``."""
        oldest = now_epoch - int(horizon_s / self.span_s)
        good = bad = 0
        for epoch, g, b in self._ring:
            if oldest < epoch <= now_epoch:
                good += g
                bad += b
        total = good + bad
        if total == 0:
            return 0.0
        budget = max(1.0 - self.objective.objective, 1e-9)
        return (bad / total) / budget

    def evaluate(self, now: float | None = None) -> str:
        """Re-evaluate burn rates (also handles recovery by time passing)."""
        if now is None:
            now = self._now()
        now_epoch = int(now // self.span_s)
        with self._lock:
            fast = self._burn(self.objective.fast_window_s, now_epoch)
            slow = self._burn(self.objective.slow_window_s, now_epoch)
            previous = self.state
            if previous == "ok" and fast >= self.objective.burn_threshold and slow >= 1.0:
                self.state = "breach"
                self.breaches += 1
                self.last_transition_t = now
            elif previous == "breach" and fast < 1.0:
                self.state = "ok"
                self.last_transition_t = now
            transition = (previous, self.state)
        if transition == ("ok", "breach"):
            self._emit(
                "slo.breach",
                "breach",
                f"{self.objective.name}: fast burn {fast:.2f}x >= "
                f"{self.objective.burn_threshold}x and slow burn {slow:.2f}x >= 1.0 "
                f"(objective: {self.objective.objective:.0%} under "
                f"{self.objective.threshold_s}s)",
                fast_burn=round(fast, 3),
                slow_burn=round(slow, 3),
            )
        elif transition == ("breach", "ok"):
            self._emit(
                "slo.recovered",
                "ok",
                f"{self.objective.name}: fast burn {fast:.2f}x dropped under 1.0; "
                "the error budget stopped burning",
                fast_burn=round(fast, 3),
                slow_burn=round(slow, 3),
            )
        return self.state

    @staticmethod
    def _emit(kind: str, outcome: str, reason: str, **attributes) -> None:
        # Imported at call time (transitions are rare): obs.window is
        # imported while ``repro.obs`` itself initializes, so a
        # module-level ``from .. import obs`` would be cycle-prone.
        from repro import obs

        obs.event(kind, outcome, reason, **attributes)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        now_epoch = int(self._now() // self.span_s)
        with self._lock:
            fast = self._burn(self.objective.fast_window_s, now_epoch)
            slow = self._burn(self.objective.slow_window_s, now_epoch)
            return {
                "name": self.objective.name,
                "threshold_s": self.objective.threshold_s,
                "objective": self.objective.objective,
                "state": self.state,
                "breaches": self.breaches,
                "fast_burn": fast,
                "slow_burn": slow,
                "good_total": self.good_total,
                "bad_total": self.bad_total,
                "last_transition_t": self.last_transition_t,
            }


# ---------------------------------------------------------------------- #
# The serving-layer telemetry hub
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TelemetryOptions:
    """Configuration for a server's :class:`Telemetry` plane."""

    window_s: float = 60.0
    buckets: int = 12
    #: Dimension keys a server records per request (beyond the global
    #: window); each gets a :class:`WindowSet`.
    max_keys_per_dimension: int = 64
    slo: SLOObjective | None = None
    #: Worst-N slow-query log size and admission floor.
    slowlog_capacity: int = 16
    slow_threshold_s: float = 0.0
    #: Capture an EXPLAIN of the worst zone for admitted slow queries.
    capture_explain: bool = True
    #: Tail-based trace retention policy; None uses the default
    #: :class:`~repro.obs.sampling.SamplingPolicy` (the trace buffer
    #: only fills while tracing itself is enabled, so it is free for
    #: telemetry-only deployments).
    sampling: Any = None


class Telemetry:
    """Windowed metrics + SLO + slow-log, bundled for one serving surface.

    ``VizServer`` and ``DataServer`` each own one; ``observe`` is the
    single per-request entry point and returns whether the request is a
    slow-log candidate (so the caller only assembles the expensive
    capture when it will be kept).
    """

    def __init__(self, options: TelemetryOptions | None = None, *, clock=None):
        self.options = options or TelemetryOptions()
        self._clock = clock
        self.now = _now_fn(clock)
        self.requests = WindowedHistogram(
            "request_s",
            window_s=self.options.window_s,
            buckets=self.options.buckets,
            clock=clock,
        )
        self.slo = SLOMonitor(self.options.slo, clock=clock)
        # Deferred import: slowlog is a sibling obs module, safe, but
        # kept here so this module's import graph stays metrics-only.
        from .slowlog import SlowQueryLog

        self.slowlog = SlowQueryLog(
            self.options.slowlog_capacity,
            threshold_s=self.options.slow_threshold_s,
        )
        from .sampling import SamplingPolicy, TraceBuffer

        self.traces = TraceBuffer(
            self.options.sampling
            if self.options.sampling is not None
            else SamplingPolicy(
                slow_threshold_s=self.options.slow_threshold_s or 0.25
            )
        )
        self._dimensions: dict[str, WindowSet] = {}
        self._lock = threading.Lock()
        self.total = 0
        self.degraded = 0
        self.failed = 0

    # ------------------------------------------------------------------ #
    def window(self, dimension: str) -> WindowSet:
        window_set = self._dimensions.get(dimension)
        if window_set is None:
            with self._lock:
                window_set = self._dimensions.get(dimension)
                if window_set is None:
                    window_set = WindowSet(
                        dimension,
                        window_s=self.options.window_s,
                        buckets=self.options.buckets,
                        max_keys=self.options.max_keys_per_dimension,
                        clock=self._clock,
                    )
                    self._dimensions[dimension] = window_set
        return window_set

    def observe(
        self,
        wall_s: float,
        *,
        dimensions: dict[str, str] | None = None,
        degraded: bool = False,
        failed: bool = False,
        trace_id: str | None = None,
    ) -> bool:
        """Record one served request; True if it's a slow-log candidate.

        ``trace_id`` (present only while tracing is enabled) flows into
        the window's worst-observation exemplar, so ``statz()``'s p99
        names a real retained trace.
        """
        with self._lock:
            self.total += 1
            if degraded:
                self.degraded += 1
            if failed:
                self.failed += 1
        self.requests.observe(wall_s, trace_id=trace_id)
        if dimensions:
            for dimension, key in dimensions.items():
                self.window(dimension).observe(key, wall_s)
        self.slo.record(wall_s)
        return self.slowlog.would_admit(wall_s)

    def offer_trace(self, root, *, force: str | None = None) -> str | None:
        """Offer a completed request trace to the tail-sampling buffer."""
        return self.traces.offer(root, force=force)

    # ------------------------------------------------------------------ #
    def statz(self) -> dict[str, Any]:
        with self._lock:
            dims = dict(self._dimensions)
            counters = {
                "total": self.total,
                "degraded": self.degraded,
                "failed": self.failed,
            }
        return {
            "requests": counters,
            "window": self.requests.snapshot(),
            "dimensions": {name: dims[name].snapshot() for name in sorted(dims)},
            "slo": self.slo.snapshot(),
            "slowlog": self.slowlog.snapshot(),
            "traces": self.traces.snapshot(),
        }
