"""The internal (VizQL-style) query model and its compiler.

"The internal queries formulated by components in Tableau closely follow
the concepts of the application. In general, the queries express
aggregate-select-project scenarios, with potential subqueries for computed
columns of different levels of detail and more sophisticated filters, such
as top-n." (paper 3.1)

A :class:`QuerySpec` captures one zone's data request: dimensions,
aggregated measures, filters (categorical / range / top-n) against a
:class:`DataSourceModel` (a single table or a star-schema join view with
named calculations). ``compile_spec`` lowers a spec to a remote logical
plan plus dialect text, externalizing big enumerations into temporary
tables and hoisting unsupported operations into local post-processing.
"""

from .spec import CategoricalFilter, RangeFilter, TopNFilter, QuerySpec, Filter
from .model import DataSourceModel, JoinSpec, LodCalculation
from .compile import CompiledQuery, compile_spec, ModelCatalog
from .postops import (
    LocalAggregate,
    LocalLod,
    LocalFilter,
    LocalProject,
    LocalSort,
    LocalTopN,
    PostOp,
    apply_post_ops,
)

__all__ = [
    "QuerySpec",
    "Filter",
    "CategoricalFilter",
    "RangeFilter",
    "TopNFilter",
    "DataSourceModel",
    "JoinSpec",
    "LodCalculation",
    "CompiledQuery",
    "compile_spec",
    "ModelCatalog",
    "PostOp",
    "LocalFilter",
    "LocalLod",
    "LocalAggregate",
    "LocalProject",
    "LocalSort",
    "LocalTopN",
    "apply_post_ops",
]
