"""Local post-processing operations (paper 3.1, 3.2).

When a backend lacks a capability (no LIMIT, missing scalar functions,
IN-lists beyond its bounds with no temp tables), the compiler hoists the
affected operations into these post-ops, executed locally over the rows
the remote query returned. The cache layer reuses the same machinery for
roll-up/filter/projection over cached results.

Execution is delegated to the TDE's physical operators over an in-memory
input, so local processing and engine processing share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from .. import obs
from ..expr.ast import AggExpr, ColumnRef, Expr
from ..tde.exec.kernels import AggSpec
from ..tde.exec.physical import (
    ExecContext,
    PFilter,
    PHashAggregate,
    PProject,
    PSingleRow,
    PSort,
    PTopN,
    PhysNode,
    execute_to_table,
)
from ..tde.storage.table import Table


@dataclass(frozen=True)
class LocalFilter:
    predicate: Expr


@dataclass(frozen=True)
class LocalProject:
    items: tuple[tuple[str, Expr], ...]

    def __init__(self, items):
        object.__setattr__(self, "items", tuple((n, e) for n, e in items))


@dataclass(frozen=True)
class LocalAggregate:
    dimensions: tuple[str, ...]
    measures: tuple[tuple[str, AggExpr], ...]

    def __init__(self, dimensions, measures):
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "measures", tuple((n, a) for n, a in measures))


@dataclass(frozen=True)
class LocalSort:
    keys: tuple[tuple[str, bool], ...]

    def __init__(self, keys):
        object.__setattr__(self, "keys", tuple((k, bool(a)) for k, a in keys))


@dataclass(frozen=True)
class LocalTopN:
    n: int
    keys: tuple[tuple[str, bool], ...]

    def __init__(self, n, keys):
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "keys", tuple((k, bool(a)) for k, a in keys))


@dataclass(frozen=True)
class LocalTopNFilter:
    """Keep rows whose ``field`` is among the top-n values by ``by``."""

    field: str
    by: AggExpr
    n: int
    ascending: bool = False


@dataclass(frozen=True)
class LocalLod:
    """Attach a FIXED level-of-detail column computed over the input.

    For each row, the new ``name`` column holds ``agg`` over all rows
    sharing the row's ``dimensions`` values. Rows with a NULL dimension
    get NULL (matching the remote LEFT-join compilation, where NULL keys
    never join).
    """

    name: str
    dimensions: tuple[str, ...]
    agg: AggExpr

    def __init__(self, name, dimensions, agg):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "agg", agg)


PostOp = Union[
    LocalFilter,
    LocalProject,
    LocalAggregate,
    LocalSort,
    LocalTopN,
    LocalTopNFilter,
    LocalLod,
]


def apply_post_ops(table: Table, post_ops: Sequence[PostOp]) -> Table:
    """Run the post-op chain locally over ``table``."""
    ctx = ExecContext(parallel=False)
    for op in post_ops:
        obs.counter(f"postops.{type(op).__name__}").inc()
        node: PhysNode = PSingleRow(table)
        if isinstance(op, LocalFilter):
            node = PFilter(node, op.predicate)
        elif isinstance(op, LocalProject):
            node = PProject(node, list(op.items))
        elif isinstance(op, LocalAggregate):
            node = _aggregate_node(table, node, op)
        elif isinstance(op, LocalSort):
            node = PSort(node, list(op.keys))
        elif isinstance(op, LocalTopN):
            node = PTopN(node, op.n, list(op.keys))
        elif isinstance(op, LocalTopNFilter):
            table = _topn_filter(table, op)
            continue
        elif isinstance(op, LocalLod):
            table = _attach_lod(table, op)
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown post-op {op!r}")
        table = execute_to_table(node, ctx)
    return table


def _aggregate_node(table: Table, node: PhysNode, op: LocalAggregate) -> PhysNode:
    schema = table.schema()
    specs: list[AggSpec] = []
    pre_items: list[tuple[str, Expr]] = [(d, ColumnRef(d)) for d in op.dimensions]
    present = set(op.dimensions)
    needs_pre = False
    for i, (name, agg) in enumerate(op.measures):
        result = agg.result_type(schema)
        if agg.arg is None:
            specs.append(AggSpec(name, "count_star", None, result))
            continue
        if isinstance(agg.arg, ColumnRef):
            arg_name = agg.arg.name
            if arg_name not in present:
                pre_items.append((arg_name, agg.arg))
                present.add(arg_name)
        else:
            arg_name = f"__arg{i}"
            pre_items.append((arg_name, agg.arg))
            present.add(arg_name)
            needs_pre = True
        specs.append(AggSpec(name, agg.func, arg_name, result))
    if needs_pre:
        node = PProject(node, pre_items)
    return PHashAggregate(node, list(op.dimensions), specs)


def _attach_lod(table: Table, op: LocalLod) -> Table:
    from ..tde.storage.column import Column

    grouped = apply_post_ops(
        table, [LocalAggregate(op.dimensions, ((op.name, op.agg),))]
    )
    value_by_key: dict[tuple, object] = {}
    dim_columns = [grouped.column(d).python_values() for d in op.dimensions]
    values = grouped.column(op.name).python_values()
    for row in range(grouped.n_rows):
        value_by_key[tuple(col[row] for col in dim_columns)] = values[row]
    row_dims = [table.column(d).python_values() for d in op.dimensions]
    out = []
    for row in range(table.n_rows):
        key = tuple(col[row] for col in row_dims)
        out.append(None if any(k is None for k in key) else value_by_key.get(key))
    result_type = op.agg.result_type(table.schema())
    if table.n_rows == 0:
        column = Column.from_values([], result_type)
    else:
        column = Column.from_values(out, result_type, compress=False)
    return table.with_column(op.name, column)


def _topn_filter(table: Table, op: LocalTopNFilter) -> Table:
    ranked = apply_post_ops(
        table,
        [
            LocalAggregate((op.field,), (("__by", op.by),)),
            LocalTopN(op.n, (("__by", op.ascending), (op.field, True))),
        ],
    )
    keep_values = set(ranked.column(op.field).python_values())
    mask = [v in keep_values for v in table.column(op.field).python_values()]
    import numpy as np

    return table.filter(np.asarray(mask, dtype=np.bool_))
