"""Query specifications: the structured form of a zone's data request.

Specs are immutable and hashable; the intelligent cache keys on their
canonical text and reasons about subsumption between them (paper 3.2).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Union

from ..errors import WorkloadError
from ..expr.ast import AggExpr, Call, ColumnRef, Expr, Literal, conjoin
from ..expr.sexpr import to_sexpr


@dataclass(frozen=True)
class CategoricalFilter:
    """Keep rows whose ``field`` is in ``values`` (or not, if ``exclude``)."""

    field: str
    values: tuple[Any, ...]
    exclude: bool = False

    def __init__(self, field: str, values, exclude: bool = False):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "exclude", exclude)

    def predicate(self) -> Expr:
        base = Call("in", (ColumnRef(self.field), Literal(self.values)))
        return Call("not", (base,)) if self.exclude else base

    def canonical(self) -> str:
        word = "not-in" if self.exclude else "in"
        return f"({word} {self.field} {sorted(map(_canon_value, self.values))})"


@dataclass(frozen=True)
class RangeFilter:
    """Keep rows with ``low <= field < high`` (either bound may be open).

    The half-open convention composes cleanly for dates and makes range
    subsumption checks in the cache a simple interval containment.
    """

    field: str
    low: Any = None
    high: Any = None

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise WorkloadError("range filter needs at least one bound")

    def predicate(self) -> Expr:
        parts: list[Expr] = []
        if self.low is not None:
            parts.append(Call(">=", (ColumnRef(self.field), Literal(self.low))))
        if self.high is not None:
            parts.append(Call("<", (ColumnRef(self.field), Literal(self.high))))
        out = conjoin(parts)
        assert out is not None
        return out

    def canonical(self) -> str:
        return f"(range {self.field} {_canon_value(self.low)} {_canon_value(self.high)})"


@dataclass(frozen=True)
class TopNFilter:
    """Keep rows whose ``field`` value ranks in the top ``n`` by ``by``.

    Example (paper Fig. 2): "the Carrier zone is filtered to the top 5
    carriers, based upon number of flights".
    """

    field: str
    by: AggExpr
    n: int
    ascending: bool = False

    def canonical(self) -> str:
        direction = "asc" if self.ascending else "desc"
        return f"(topn {self.field} {self.n} {direction} {to_sexpr(self.by)})"


Filter = Union[CategoricalFilter, RangeFilter, TopNFilter]


@dataclass(frozen=True)
class QuerySpec:
    """One aggregate-select-project request against a data source view.

    ``measures`` maps output aliases to aggregate expressions; an empty
    measure list makes this a *domain query* (distinct dimension values),
    the kind fact-table culling accelerates (paper 4.1.2).
    """

    datasource: str
    dimensions: tuple[str, ...] = ()
    measures: tuple[tuple[str, AggExpr], ...] = ()
    filters: tuple[Filter, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def __init__(
        self,
        datasource: str,
        dimensions=(),
        measures=(),
        filters=(),
        order_by=(),
        limit: int | None = None,
    ):
        object.__setattr__(self, "datasource", datasource)
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "measures", tuple((n, a) for n, a in measures))
        object.__setattr__(self, "filters", tuple(filters))
        object.__setattr__(self, "order_by", tuple((k, bool(a)) for k, a in order_by))
        object.__setattr__(self, "limit", limit)
        if not self.dimensions and not self.measures:
            raise WorkloadError("a query needs dimensions or measures")

    # ------------------------------------------------------------------ #
    def canonical(self) -> str:
        """Deterministic text identity (cache keys, batch dedup)."""
        dims = " ".join(self.dimensions)
        measures = " ".join(f"({n} {to_sexpr(a)})" for n, a in self.measures)
        filters = " ".join(sorted(f.canonical() for f in self.filters))
        order = " ".join(f"({k} {'asc' if asc else 'desc'})" for k, asc in self.order_by)
        return (
            f"(query {self.datasource} (dims {dims}) (measures {measures})"
            f" (filters {filters}) (order {order}) (limit {self.limit}))"
        )

    def fields_used(self) -> set[str]:
        """Every view field the spec touches (for calculation expansion)."""
        from ..expr.ast import columns_used

        out = set(self.dimensions)
        for _n, agg in self.measures:
            out |= columns_used(agg.arg)
        for f in self.filters:
            out.add(f.field)
            if isinstance(f, TopNFilter):
                out |= columns_used(f.by.arg)
        # order_by keys reference *output* names (dims/measure aliases),
        # not view fields, so they are intentionally excluded here.
        return out

    def filter_fields(self) -> set[str]:
        return {f.field for f in self.filters}

    def with_filters(self, filters) -> "QuerySpec":
        return QuerySpec(
            self.datasource,
            self.dimensions,
            self.measures,
            tuple(filters),
            self.order_by,
            self.limit,
        )

    def with_dimensions(self, dimensions) -> "QuerySpec":
        return QuerySpec(
            self.datasource,
            tuple(dimensions),
            self.measures,
            self.filters,
            self.order_by,
            self.limit,
        )

    def with_measures(self, measures) -> "QuerySpec":
        return QuerySpec(
            self.datasource,
            self.dimensions,
            tuple(measures),
            self.filters,
            self.order_by,
            self.limit,
        )


def _canon_value(v: Any) -> str:
    if isinstance(v, (_dt.date, _dt.datetime)):
        return v.isoformat()
    return repr(v)
