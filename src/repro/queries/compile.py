"""Spec → remote plan + dialect text + temp tables + local post-ops.

The compiler mirrors paper 3.1: it builds a logical operator tree for the
view, applies structural simplification (delegated to the TDE optimizer's
rewrite pipeline where the target is the TDE), externalizes large
enumerations into temporary tables, consults backend capabilities, and —
when the backend cannot express something — falls back to a *detail-mode*
query whose missing pieces run locally in the post-processing stage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..datatypes import LogicalType
from ..errors import BindError, CapabilityError
from ..expr.ast import ColumnRef, Expr, columns_used, conjoin
from ..sql.generator import generate_sql, _Generator
from ..tde.storage.table import Table
from ..tde.tql.parser import to_tql
from ..tde.tql.plan import (
    Aggregate,
    Join,
    Limit,
    LogicalPlan,
    Order,
    Project,
    Select,
    TableScan,
    TopN,
)
from .model import DataSourceModel
from .postops import (
    LocalAggregate,
    LocalFilter,
    LocalLod,
    LocalProject,
    LocalSort,
    LocalTopN,
    LocalTopNFilter,
    PostOp,
)
from .spec import CategoricalFilter, QuerySpec, RangeFilter, TopNFilter


class ModelCatalog:
    """Binder catalog over a data source plus per-query temp tables."""

    def __init__(self, source, temp_tables: dict[str, Table] | None = None):
        self.source = source
        self.temp_tables = temp_tables or {}

    def schema_of(self, table: str) -> dict[str, LogicalType]:
        if table in self.temp_tables:
            return self.temp_tables[table].schema()
        return self.source.schema_of(table)


@dataclass
class CompiledQuery:
    """Everything needed to execute one spec against one data source."""

    spec: QuerySpec
    datasource: str
    language: str  # "sql" | "tql"
    text: str
    plan: LogicalPlan
    temp_tables: dict[str, Table] = field(default_factory=dict)
    post_ops: tuple[PostOp, ...] = ()
    detail_mode: bool = False

    @property
    def literal_key(self) -> str:
        """Key for the literal query cache: text + temp-table fingerprints.

        Two textually identical queries referencing temp tables with
        different contents must not collide.
        """
        digest = hashlib.sha256()
        digest.update(self.datasource.encode())
        digest.update(self.text.encode())
        for name in sorted(self.temp_tables):
            digest.update(name.encode())
            for row in self.temp_tables[name].to_rows():
                digest.update(repr(row).encode())
        return digest.hexdigest()


def compile_spec(
    spec: QuerySpec,
    model: DataSourceModel,
    source,
    *,
    externalize_threshold: int | None = None,
) -> CompiledQuery:
    """Compile one query spec for one data source."""
    compiler = _Compiler(spec, model, source, externalize_threshold)
    return compiler.compile()


class _Compiler:
    def __init__(self, spec, model, source, externalize_threshold):
        self.spec = spec
        self.model = model
        self.source = source
        self.dialect = source.dialect
        self.language = source.query_language
        if externalize_threshold is not None:
            self.externalize_threshold = externalize_threshold
        else:
            self.externalize_threshold = self.dialect.max_in_list
        self.temp_tables: dict[str, Table] = {}
        self.view_schema = model.schema(source)

    # ------------------------------------------------------------------ #
    def compile(self) -> CompiledQuery:
        self._validate()
        try:
            return self._compile_full(strip_shape=False)
        except CapabilityError as exc:
            if exc.capability == "limit" and not self._has_topn_filter():
                self.temp_tables = {}
                return self._compile_full(strip_shape=True)
            self.temp_tables = {}
            return self._compile_detail()

    def _validate(self) -> None:
        for name in self.spec.fields_used():
            if name not in self.view_schema:
                raise BindError(f"unknown field {name!r} in model {self.model.name}")
        out_names = set(self.spec.dimensions) | {n for n, _ in self.spec.measures}
        for key, _asc in self.spec.order_by:
            if key not in out_names:
                raise BindError(f"order key {key!r} is not in the query output")

    def _has_topn_filter(self) -> bool:
        return any(isinstance(f, TopNFilter) for f in self.spec.filters)

    # ------------------------------------------------------------------ #
    # Full pushdown
    # ------------------------------------------------------------------ #
    def _compile_full(self, *, strip_shape: bool) -> CompiledQuery:
        plan = self._calc_plan()
        plan = self._apply_lod_joins(plan)
        plan = self._apply_filters_remote(plan, allow_detail=False)
        plan = Aggregate(plan, self.spec.dimensions, self.spec.measures)
        post_ops: list[PostOp] = []
        if strip_shape:
            if self.spec.order_by and self.spec.limit is not None:
                post_ops.append(LocalTopN(self.spec.limit, self.spec.order_by))
            elif self.spec.order_by:
                post_ops.append(LocalSort(self.spec.order_by))
            elif self.spec.limit is not None:
                post_ops.append(LocalTopN(self.spec.limit, tuple()))
        else:
            plan = self._shape(plan)
        text = self._render(plan)
        return CompiledQuery(
            self.spec,
            self.source.name,
            self.language,
            text,
            plan,
            dict(self.temp_tables),
            tuple(post_ops),
        )

    def _calc_plan(self) -> LogicalPlan:
        base = self.model.base_plan()
        physical, calc_items, _lods = self.model.expand_fields(
            self.spec.fields_used(), self.source
        )
        if not calc_items:
            return base
        items = [(c, ColumnRef(c)) for c in sorted(physical)]
        items += sorted(calc_items.items())
        return Project(base, items)

    def _apply_lod_joins(self, plan: LogicalPlan) -> LogicalPlan:
        """Attach FIXED level-of-detail fields via aggregate subqueries.

        Each LOD becomes "compute agg grouped by its dimensions over the
        (unfiltered) view, then join back" — the paper 3.1's "subqueries
        for computed columns of different levels of detail". A LEFT join
        keeps rows whose LOD dimension is NULL (their LOD value is NULL).
        """
        _physical, _calcs, lod_items = self.model.expand_fields(
            self.spec.fields_used(), self.source
        )
        if not lod_items:
            return plan
        view = self._calc_plan()  # unfiltered view, calc columns included
        for name in sorted(lod_items):
            lod = lod_items[name]
            sub: LogicalPlan = Aggregate(view, lod.dimensions, ((name, lod.agg),))
            renamed = tuple(
                (f"__lod_{name}_{d}", ColumnRef(d)) for d in lod.dimensions
            ) + ((name, ColumnRef(name)),)
            sub = Project(sub, renamed)
            conditions = tuple((d, f"__lod_{name}_{d}") for d in lod.dimensions)
            plan = Join("left", conditions, plan, sub)
        return plan

    def _apply_filters_remote(self, plan: LogicalPlan, *, allow_detail: bool) -> LogicalPlan:
        simple: list[Expr] = []
        topn: list[TopNFilter] = []
        for f in self.spec.filters:
            if isinstance(f, TopNFilter):
                topn.append(f)
            elif isinstance(f, CategoricalFilter) and self._should_externalize(f):
                plan = self._externalize(plan, f)
            else:
                simple.append(f.predicate())
        if simple:
            plan = Select(plan, conjoin(simple))
        for tf in topn:
            plan = self._topn_join(plan, tf)
        return plan

    def _should_externalize(self, f: CategoricalFilter) -> bool:
        if f.exclude:
            return False  # anti-join externalization is not supported
        threshold = self.externalize_threshold
        if threshold is None:
            return False
        if len(f.values) <= threshold:
            return False
        if not self.dialect.supports_temp_tables:
            raise CapabilityError(
                f"IN-list of {len(f.values)} values with no temp-table support",
                "in_list",
            )
        return True

    def _externalize(self, plan: LogicalPlan, f: CategoricalFilter) -> LogicalPlan:
        """Ship a large enumeration as a temp table + join (paper 3.1, 5.3)."""
        name = f"#tt{len(self.temp_tables)}"
        ltype = self.view_schema[f.field]
        values = sorted(set(f.values))
        self.temp_tables[name] = Table.from_pydict(
            {f.field: values}, types={f.field: ltype}
        )
        return Join("inner", ((f.field, f.field),), plan, TableScan(name))

    def _topn_join(self, plan: LogicalPlan, tf: TopNFilter) -> LogicalPlan:
        ranked = Aggregate(plan, (tf.field,), (("__by", tf.by),))
        top = TopN(ranked, tf.n, (("__by", tf.ascending), (tf.field, True)))
        sub = Project(top, ((tf.field, ColumnRef(tf.field)),))
        return Join("inner", ((tf.field, tf.field),), plan, sub)

    def _shape(self, plan: LogicalPlan) -> LogicalPlan:
        if self.spec.order_by and self.spec.limit is not None:
            return TopN(plan, self.spec.limit, self.spec.order_by)
        if self.spec.order_by:
            return Order(plan, self.spec.order_by)
        if self.spec.limit is not None:
            return Limit(plan, self.spec.limit)
        return plan

    # ------------------------------------------------------------------ #
    # Detail mode
    # ------------------------------------------------------------------ #
    def _compile_detail(self) -> CompiledQuery:
        """Fetch pre-filtered detail rows; aggregate and finish locally."""
        physical, calc_items, lod_items = self.model.expand_fields(
            self.spec.fields_used(), self.source
        )
        plan: LogicalPlan = self.model.base_plan()
        remote_preds: list[Expr] = []
        local_filters: list[Expr] = []
        topn_filters: list[TopNFilter] = []
        for f in self.spec.filters:
            if isinstance(f, TopNFilter):
                topn_filters.append(f)
                continue
            pred = f.predicate()
            if lod_items:
                # FIXED calculations are evaluated over the unfiltered
                # view: keep every filter local so the LOD sees all rows.
                local_filters.append(pred)
                continue
            if isinstance(f, CategoricalFilter) and self._can_externalize_detail(f):
                plan = self._externalize(plan, f)
                continue
            if columns_used(pred) <= physical and self._renders(pred):
                remote_preds.append(pred)
            else:
                local_filters.append(pred)
        if remote_preds:
            plan = Select(plan, conjoin(remote_preds))
        plan = Project(plan, tuple((c, ColumnRef(c)) for c in sorted(physical)))
        post_ops: list[PostOp] = []
        if calc_items:
            items = [(c, ColumnRef(c)) for c in sorted(physical)]
            items += sorted(calc_items.items())
            post_ops.append(LocalProject(items))
        for name in sorted(lod_items):
            lod = lod_items[name]
            post_ops.append(LocalLod(name, lod.dimensions, lod.agg))
        if local_filters:
            post_ops.append(LocalFilter(conjoin(local_filters)))
        for tf in topn_filters:
            post_ops.append(LocalTopNFilter(tf.field, tf.by, tf.n, tf.ascending))
        post_ops.append(LocalAggregate(self.spec.dimensions, self.spec.measures))
        if self.spec.order_by and self.spec.limit is not None:
            post_ops.append(LocalTopN(self.spec.limit, self.spec.order_by))
        elif self.spec.order_by:
            post_ops.append(LocalSort(self.spec.order_by))
        elif self.spec.limit is not None:
            post_ops.append(LocalTopN(self.spec.limit, tuple()))
        text = self._render(plan)
        return CompiledQuery(
            self.spec,
            self.source.name,
            self.language,
            text,
            plan,
            dict(self.temp_tables),
            tuple(post_ops),
            detail_mode=True,
        )

    def _can_externalize_detail(self, f: CategoricalFilter) -> bool:
        threshold = self.externalize_threshold
        return (
            not f.exclude
            and threshold is not None
            and len(f.values) > threshold
            and self.dialect.supports_temp_tables
        )

    def _renders(self, pred: Expr) -> bool:
        if self.language == "tql":
            return True
        try:
            _Generator(self.dialect).expr(pred)
            return True
        except CapabilityError:
            return False

    # ------------------------------------------------------------------ #
    def _render(self, plan: LogicalPlan) -> str:
        if self.language == "tql":
            return to_tql(plan)
        catalog = ModelCatalog(self.source, self.temp_tables)
        return generate_sql(plan, self.dialect, catalog)
