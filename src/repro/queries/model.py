"""Data-source models: the view a spec is evaluated against.

"A query gets executed against a certain view on the data of a single
data source. Users can specify views as single tables ..., multi-table
joins (often star or snowflake schemas), parameterized custom SQL queries,
stored procedures or cubes." (paper 3.1)

A :class:`DataSourceModel` covers the two shapes the experiments need:
single tables and star-schema joins, plus named calculations (the shared
calculated fields Data Server publishes, paper 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..datatypes import LogicalType
from ..errors import BindError
from ..expr.ast import Expr, columns_used, infer_type
from ..tde.tql.plan import Join, LogicalPlan, TableScan


@dataclass(frozen=True)
class JoinSpec:
    """One join edge from the base (fact) table to a dimension table."""

    table: str
    conditions: tuple[tuple[str, str], ...]  # (base/fact column, dim column)
    kind: str = "inner"

    def __init__(self, table: str, conditions, kind: str = "inner"):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "conditions", tuple((l, r) for l, r in conditions))
        object.__setattr__(self, "kind", kind)


@dataclass(frozen=True)
class LodCalculation:
    """A FIXED level-of-detail calculation (paper 3.1).

    "custom calculations – potentially at different levels of detail ...
    with potential subqueries for computed columns of different levels of
    detail": the field's value for a row is ``agg`` computed over all view
    rows sharing that row's ``dimensions`` — e.g. the market's average
    delay attached to every flight of the market. Compiled as an aggregate
    subquery joined back to the view; like Tableau's FIXED expressions, it
    is evaluated over the unfiltered view.
    """

    dimensions: tuple[str, ...]
    agg: "object"  # AggExpr

    def __init__(self, dimensions, agg):
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "agg", agg)
        if not self.dimensions:
            raise BindError("a FIXED calculation needs at least one dimension")


@dataclass(frozen=True)
class DataSourceModel:
    """A named view: base table, optional joins, named calculations."""

    name: str
    base_table: str
    joins: tuple[JoinSpec, ...] = ()
    calculations: tuple[tuple[str, Expr], ...] = ()
    lod_calculations: tuple[tuple[str, LodCalculation], ...] = ()

    def __init__(self, name: str, base_table: str, joins=(), calculations=(), lod_calculations=()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "base_table", base_table)
        object.__setattr__(self, "joins", tuple(joins))
        if isinstance(calculations, Mapping):
            calculations = tuple(calculations.items())
        object.__setattr__(self, "calculations", tuple(calculations))
        if isinstance(lod_calculations, Mapping):
            lod_calculations = tuple(lod_calculations.items())
        object.__setattr__(self, "lod_calculations", tuple(lod_calculations))

    # ------------------------------------------------------------------ #
    def calculation(self, name: str) -> Expr | None:
        for calc_name, expr in self.calculations:
            if calc_name == name:
                return expr
        return None

    def lod(self, name: str) -> LodCalculation | None:
        for lod_name, lod in self.lod_calculations:
            if lod_name == name:
                return lod
        return None

    def with_calculation(self, name: str, expr: Expr) -> "DataSourceModel":
        calcs = tuple(c for c in self.calculations if c[0] != name) + ((name, expr),)
        return DataSourceModel(self.name, self.base_table, self.joins, calcs, self.lod_calculations)

    def with_lod(self, name: str, lod: LodCalculation) -> "DataSourceModel":
        lods = tuple(c for c in self.lod_calculations if c[0] != name) + ((name, lod),)
        return DataSourceModel(self.name, self.base_table, self.joins, self.calculations, lods)

    def base_plan(self) -> LogicalPlan:
        """The view's join tree (left-deep, fact leftmost — paper 4.2.2)."""
        plan: LogicalPlan = TableScan(self.base_table)
        for join in self.joins:
            plan = Join(join.kind, join.conditions, plan, TableScan(join.table))
        return plan

    def physical_schema(self, source) -> dict[str, LogicalType]:
        """Columns of the join view (before calculations)."""
        schema = dict(source.schema_of(self.base_table))
        for join in self.joins:
            right = source.schema_of(join.table)
            right_keys = {r for _, r in join.conditions}
            for col, ltype in right.items():
                if col in right_keys:
                    continue
                if col in schema:
                    raise BindError(f"column collision {col!r} in model {self.name}")
                schema[col] = ltype
        return schema

    def schema(self, source) -> dict[str, LogicalType]:
        """Full field namespace: physical columns, calcs, LOD calcs."""
        schema = self.physical_schema(source)
        for name, expr in self.calculations:
            schema[name] = infer_type(expr, schema)
        for name, lod in self.lod_calculations:
            for dim in lod.dimensions:
                if dim not in schema:
                    raise BindError(f"LOD {name!r} fixes unknown field {dim!r}")
            schema[name] = lod.agg.result_type(schema)
        return schema

    def expand_fields(
        self, fields: set[str], source
    ) -> tuple[set[str], dict[str, Expr], dict[str, LodCalculation]]:
        """Split requested fields into physical columns, calcs, and LODs.

        Returns ``(physical_columns, calc_items, lod_items)``. Calculation
        expressions may reference physical columns only (one level); LOD
        calculations may fix calc or physical dimensions.
        """
        physical = self.physical_schema(source)
        needed_physical: set[str] = set()
        calc_items: dict[str, Expr] = {}
        lod_items: dict[str, LodCalculation] = {}
        pending = list(fields)
        while pending:
            name = pending.pop()
            if name in physical:
                needed_physical.add(name)
                continue
            expr = self.calculation(name)
            if expr is not None:
                calc_items[name] = expr
                needed_physical |= columns_used(expr)
                continue
            lod = self.lod(name)
            if lod is not None:
                lod_items[name] = lod
                pending.extend(lod.dimensions)
                pending.extend(columns_used(lod.agg.arg))
                continue
            raise BindError(f"unknown field {name!r} in model {self.name}")
        return needed_physical, calc_items, lod_items
