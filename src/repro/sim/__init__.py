"""Virtual-time execution modeling.

The paper's intra-query parallelism results (section 4.2) were measured on
multi-core hardware; this host may have a single core and Python holds a
GIL, so CPU-bound parallel speedups cannot be observed in wall-clock time.
Instead, ``simulate_plan`` replays a *real* physical plan — the exact tree
the optimizer produced, including Exchange placement, shared builds and
fraction boundaries — on a simulated multicore machine using the same
per-operator cost constants the optimizer plans with. The threaded runtime
still executes every parallel plan for correctness; the simulator supplies
the latency numbers.
"""

from .machine import MachineModel, SimReport, simulate_plan
from .metrics import Recorder

__all__ = ["MachineModel", "SimReport", "simulate_plan", "Recorder"]
