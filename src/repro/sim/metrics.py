"""Small measurement helpers used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Recorder:
    """Collects labeled series and prints them as aligned tables.

    Benchmarks use one Recorder per experiment so their stdout shows the
    same rows/series the paper's figures would, independent of
    pytest-benchmark's own timing output.
    """

    title: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if self.columns and len(values) > len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but {self.title!r} declares "
                f"{len(self.columns)} columns: {values!r}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        formatted: list[list[str]] = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            # Short rows are padded so every cell lines up under a column
            # (over-long rows were rejected in add()).
            cells += [""] * (len(self.columns) - len(cells))
            formatted.append(cells)
            for i, cell in enumerate(cells):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly series (the machine-readable BENCH_* payload)."""
        return {"title": self.title, "columns": list(self.columns), "rows": [list(r) for r in self.rows]}

    def emit(self) -> None:
        print("\n" + self.render())


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


def time_call(fn: Callable[[], Any], *, repeat: int = 3) -> tuple[float, Any]:
    """Median wall-clock seconds over ``repeat`` calls, plus last result."""
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result
