"""Multicore machine model: replay physical plans in virtual time.

The model walks a physical operator tree bottom-up, computing each
pipeline fragment's CPU work from the optimizer's cost constants and the
*actual* row counts of the scanned fractions (available on the plan's
``PScan`` nodes). Exchange inputs become parallel tasks scheduled onto K
cores with longest-processing-time list scheduling; everything above an
Exchange is serial; SharedTable builds are paid once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import math as _math

from ..errors import ReproError
from ..expr.ast import Expr
from ..tde.exec.exchange import PExchange, PMergeSorted, SharedBuild
from ..tde.exec.physical import (
    PFilter,
    PHashAggregate,
    PHashJoin,
    PIndexedRleScan,
    PLimit,
    PProject,
    PScan,
    PSingleRow,
    PSort,
    PStreamAggregate,
    PTopN,
    PhysNode,
)
from ..tde.optimizer import cost as C


@dataclass
class MachineModel:
    """A simulated host."""

    cores: int = 4
    #: Seconds of virtual time per cost-model work unit.
    unit_time_s: float = 2e-8
    #: Fixed cost of standing up one parallel fragment (thread dispatch).
    fragment_overhead_units: float = C.EXCHANGE_SETUP


@dataclass
class SimReport:
    """Virtual-time outcome of one plan replay."""

    elapsed_s: float
    cpu_s: float
    fragments: int
    critical_path_s: float

    @property
    def speedup_headroom(self) -> float:
        """cpu / elapsed — how much parallelism the plan realized."""
        return self.cpu_s / self.elapsed_s if self.elapsed_s else 1.0


def simulate_plan(plan: PhysNode, machine: MachineModel | None = None) -> SimReport:
    """Replay ``plan`` on the machine model; returns virtual timings."""
    machine = machine or MachineModel()
    sim = _Simulator(machine)
    elapsed_units, _rows = sim.elapsed(plan)
    return SimReport(
        elapsed_s=elapsed_units * machine.unit_time_s,
        cpu_s=sim.total_work * machine.unit_time_s,
        fragments=sim.fragments,
        critical_path_s=elapsed_units * machine.unit_time_s,
    )


class _Simulator:
    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.total_work = 0.0
        self.fragments = 0
        self._shared_seen: set[int] = set()

    # ------------------------------------------------------------------ #
    # Elapsed (wall) virtual time of a subtree
    # ------------------------------------------------------------------ #
    def elapsed(self, node: PhysNode) -> tuple[float, float]:
        """Return (elapsed_units, output_rows)."""
        if isinstance(node, (PExchange, PMergeSorted)):
            works = []
            rows = 0.0
            prelude = 0.0
            for child in node.inputs:
                # Shared builds inside fragments are built once, serially,
                # before the parallel region starts.
                prelude += self._collect_shared(child)
                w, r = self.work(child)
                works.append(w + self.machine.fragment_overhead_units)
                rows += r
            self.fragments += len(works)
            makespan = _lpt_makespan(works, self.machine.cores)
            if isinstance(node, PMergeSorted):
                # k-way merge: O(n log k) with a heavier per-row constant.
                merge = rows * C.EXCHANGE_ROW * 4.0 * max(
                    1.0, _math.log2(max(len(works), 2))
                )
            else:
                merge = rows * C.EXCHANGE_ROW
            self.total_work += merge
            return prelude + makespan + merge, rows
        if isinstance(node, SharedBuild):
            if id(node) in self._shared_seen:
                w, r = self.work(node.child, count=False)
                return 0.0, r
            self._shared_seen.add(id(node))
            return self.elapsed(node.child)
        if isinstance(node, PHashJoin):
            build_elapsed, build_rows = self.elapsed(node.build_source)
            probe_elapsed, probe_rows = self.elapsed(node.probe)
            own = build_rows * C.JOIN_BUILD_ROW + probe_rows * C.JOIN_PROBE_ROW
            self.total_work += own
            return build_elapsed + probe_elapsed + own, probe_rows
        own, rows, child = self._own(node)
        self.total_work += own
        if child is None:
            return own, rows
        child_elapsed, _ = self.elapsed(child)
        return child_elapsed + own, rows

    # ------------------------------------------------------------------ #
    # Total serial work of a subtree (a fragment's CPU demand)
    # ------------------------------------------------------------------ #
    def work(self, node: PhysNode, *, count: bool = True) -> tuple[float, float]:
        if isinstance(node, (PExchange, PMergeSorted)):
            total = 0.0
            rows = 0.0
            for child in node.inputs:
                w, r = self.work(child, count=count)
                total += w
                rows += r
            return total, rows
        if isinstance(node, SharedBuild):
            first = id(node) not in self._shared_seen
            if first:
                self._shared_seen.add(id(node))
            w, r = self.work(node.child, count=count and first)
            return (w if first else 0.0), r
        if isinstance(node, PHashJoin):
            bw, brows = self.work(node.build_source, count=count)
            pw, prows = self.work(node.probe, count=count)
            own = brows * C.JOIN_BUILD_ROW + prows * C.JOIN_PROBE_ROW
            if count:
                self.total_work += own
            return bw + pw + own, prows
        own, rows, child = self._own(node)
        if count:
            self.total_work += own
        if child is None:
            return own, rows
        cw, _ = self.work(child, count=count)
        return cw + own, rows

    def _collect_shared(self, node: PhysNode) -> float:
        """Serial prelude: unbuilt SharedBuild work inside a fragment."""
        prelude = 0.0
        for sub in node.walk():
            if isinstance(sub, SharedBuild) and id(sub) not in self._shared_seen:
                self._shared_seen.add(id(sub))
                w, _ = self.work(sub.child)
                prelude += w
        return prelude

    # ------------------------------------------------------------------ #
    # Per-operator work (excluding children); returns (own, rows, child)
    # ------------------------------------------------------------------ #
    def _own(self, node: PhysNode) -> tuple[float, float, PhysNode | None]:
        if isinstance(node, PScan):
            stop = node.table.n_rows if node.stop is None else node.stop
            rows = max(stop - node.start, 0)
            own = rows * C.SCAN_ROW
            out_rows = rows
            if node.predicate is not None:
                own += rows * (C.FILTER_ROW + _expr_units(node.predicate))
                out_rows = rows * C.estimate_selectivity(node.predicate)
            return own, out_rows, None
        if isinstance(node, PIndexedRleScan):
            rows = node.table.n_rows
            col = node.table.column(node.column)
            runs = getattr(col.physical, "n_runs", rows)
            selectivity = C.estimate_selectivity(node.predicate)
            scanned = rows * selectivity
            own = runs * (C.FILTER_ROW + _expr_units(node.predicate)) + scanned * C.SCAN_ROW
            if node.residual is not None:
                own += scanned * (C.FILTER_ROW + _expr_units(node.residual))
                scanned *= C.estimate_selectivity(node.residual)
            return own, scanned, None
        if isinstance(node, PSingleRow):
            return 0.0, node.table.n_rows, None
        if isinstance(node, PFilter):
            rows = self._rows_of(node.child)
            own = rows * (C.FILTER_ROW + _expr_units(node.predicate))
            return own, rows * C.estimate_selectivity(node.predicate), node.child
        if isinstance(node, PProject):
            rows = self._rows_of(node.child)
            per_row = C.PROJECT_ROW + sum(_expr_units(e) for _n, e in node.items)
            return rows * per_row, rows, node.child
        if isinstance(node, (PHashAggregate, PStreamAggregate)):
            rows = self._rows_of(node.child)
            per_row = (
                C.AGG_STREAM_ROW if isinstance(node, PStreamAggregate) else C.AGG_HASH_ROW
            )
            groups = max(1.0, rows ** 0.75) if node.groupby else 1.0
            return rows * per_row * max(1, len(node.specs)), min(groups, rows), node.child
        if isinstance(node, PSort):
            rows = self._rows_of(node.child)
            n = max(rows, 2.0)
            return n * math.log2(n) * C.SORT_ROW_LOG, rows, node.child
        if type(node).__name__ == "PWindow":
            rows = self._rows_of(node.child)
            n = max(rows, 2.0)
            per_item = n * math.log2(n) * C.SORT_ROW_LOG + n * 1.5
            return per_item * max(len(node.items), 1), rows, node.child
        if isinstance(node, PTopN):
            rows = self._rows_of(node.child)
            return rows * C.TOPN_ROW, min(rows, node.n), node.child
        if isinstance(node, PLimit):
            rows = self._rows_of(node.child)
            return 0.0, min(rows, node.n), node.child
        raise ReproError(f"cannot simulate {type(node).__name__}")

    def _rows_of(self, node: PhysNode) -> float:
        """Estimated output rows of a subtree (no work accounting)."""
        if isinstance(node, (PExchange, PMergeSorted)):
            return sum(self._rows_of(c) for c in node.inputs)
        if isinstance(node, SharedBuild):
            return self._rows_of(node.child)
        if isinstance(node, PHashJoin):
            return self._rows_of(node.probe)
        own, rows, _child = self._own_rows(node)
        return rows

    def _own_rows(self, node: PhysNode) -> tuple[float, float, PhysNode | None]:
        # A work-free variant of _own for row estimation only.
        saved = self.total_work
        try:
            return self._own(node)
        finally:
            self.total_work = saved


def _expr_units(expr: Expr) -> float:
    return C.expr_cost(expr)


def _lpt_makespan(works: list[float], cores: int) -> float:
    """Longest-processing-time list scheduling makespan."""
    if not works:
        return 0.0
    loads = [0.0] * max(1, cores)
    for w in sorted(works, reverse=True):
        idx = loads.index(min(loads))
        loads[idx] += w
    return max(loads)
